//! Property tests for the WAL's group-commit force primitive:
//! `force_up_to(lsn)` must be **idempotent** (a second force of the same
//! LSN is never physical) and **monotone** (the durable horizon never
//! retreats) — both sequentially over arbitrary append/force/flush
//! programs and under concurrent callers racing on one log.

use fgs_core::{ClientId, TxnId};
use fgs_pagestore::{LogRecord, Lsn, Wal, WalHold};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// One step of a WAL program. Force targets index into the list of LSNs
/// returned by earlier appends (modulo whatever exists at run time).
#[derive(Debug, Clone, Copy)]
enum Op {
    Append { payload: u8 },
    ForceAppended { index: usize },
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // (kind, value): half the steps append, the rest mostly force with an
    // occasional full flush. The vendored prop_oneof! is homogeneous, so
    // encode the choice in a tuple instead.
    prop::collection::vec(
        (0u8..8, 0u64..256).prop_map(|(kind, value)| match kind {
            0..=3 => Op::Append {
                payload: value as u8,
            },
            4..=6 => Op::ForceAppended {
                index: value as usize,
            },
            _ => Op::Flush,
        }),
        1..60,
    )
}

fn append(wal: &Wal, client: u16, payload: u8) -> Lsn {
    wal.append(&LogRecord::Update {
        txn: TxnId::new(ClientId(client), 1),
        oid: fgs_core::Oid::new(fgs_core::PageId(u32::from(payload)), 0),
        before: vec![],
        after: vec![payload],
    })
}

/// Runs a program against `wal`, checking force semantics at every step.
/// Safe to run from several threads at once: every assertion holds under
/// interference because the horizon is global and monotone.
fn run_program(wal: &Wal, client: u16, program: &[Op]) {
    let mut lsns: Vec<Lsn> = Vec::new();
    let mut last_seen_flushed = 0;
    for op in program {
        match *op {
            Op::Append { payload } => lsns.push(append(wal, client, payload)),
            Op::ForceAppended { index } => {
                if lsns.is_empty() {
                    continue;
                }
                let lsn = lsns[index % lsns.len()];
                wal.force_up_to(lsn);
                // Coverage: on return the record at `lsn` is durable, no
                // matter which caller performed the physical force.
                assert!(wal.flushed() > lsn, "force_up_to({lsn}) left it unforced");
                // Idempotence: an immediate re-force of the same LSN is
                // never physical — the horizon is already past it and can
                // never retreat, even if other threads appended meanwhile.
                assert!(
                    !wal.force_up_to(lsn),
                    "second force_up_to({lsn}) claimed to be physical"
                );
            }
            Op::Flush => {
                wal.flush();
            }
        }
        // Monotonicity: the horizon observed by this thread never
        // retreats across any pair of its own observations.
        let now = wal.flushed();
        assert!(
            now >= last_seen_flushed,
            "flushed went backwards: {last_seen_flushed} -> {now}"
        );
        last_seen_flushed = now;
    }
}

/// One step of a *staged* WAL program, driving the double-buffered
/// writer API (`seal` / `write_sealed` / `force_written`) plus chaos
/// holds, the way the dedicated log-writer thread and the harness do.
#[derive(Debug, Clone, Copy)]
enum StagedOp {
    /// Append a commit record for a fresh transaction.
    Commit,
    /// Append a filler update record (commit-data traffic).
    Update {
        payload: u8,
    },
    /// One writer stage.
    Seal,
    WriteSealed,
    /// Force: every commit whose record end is covered by the returned
    /// watermark becomes *acked* — the completion router's release rule.
    ForceWritten,
    /// The synchronous path (checkpoint/abort), which collapses stages.
    Flush,
    /// Engage or release a chaos freeze point.
    Hold {
        which: u8,
    },
}

fn staged_ops() -> impl Strategy<Value = Vec<StagedOp>> {
    prop::collection::vec(
        (0u8..16, 0u64..256).prop_map(|(kind, value)| match kind {
            0..=4 => StagedOp::Commit,
            5..=7 => StagedOp::Update {
                payload: value as u8,
            },
            8..=9 => StagedOp::Seal,
            10..=11 => StagedOp::WriteSealed,
            12..=13 => StagedOp::ForceWritten,
            14 => StagedOp::Flush,
            _ => StagedOp::Hold {
                which: (value % 4) as u8,
            },
        }),
        1..80,
    )
}

proptest! {
    /// The asynchronous-durability safety property, end to end: however
    /// a staged program interleaves appends, writer stages, synchronous
    /// flushes and chaos holds, a crash image with an arbitrary torn
    /// tail (`crash_bytes(extra)`) replays **every commit whose ack the
    /// completion router would have released** (watermark past its
    /// record end). Ghost commits may appear; acked ones may not vanish.
    #[test]
    fn torn_shadow_tail_never_loses_an_acked_commit(
        program in staged_ops(),
        extra in 0usize..256,
    ) {
        let wal = Wal::new();
        let mut next_txn = 1u64;
        // (txn seq, record end offset) of every appended commit.
        let mut commits: Vec<(u64, Lsn)> = Vec::new();
        let mut acked: Vec<u64> = Vec::new();
        let ack_up_to = |commits: &[(u64, Lsn)], durable: u64, acked: &mut Vec<u64>| {
            for &(txn, end) in commits {
                if end <= durable && !acked.contains(&txn) {
                    acked.push(txn);
                }
            }
        };
        for op in &program {
            match *op {
                StagedOp::Commit => {
                    let txn = next_txn;
                    next_txn += 1;
                    wal.append(&LogRecord::Commit {
                        txn: TxnId::new(ClientId(0), txn),
                    });
                    commits.push((txn, wal.len()));
                }
                StagedOp::Update { payload } => {
                    append(&wal, 0, payload);
                }
                StagedOp::Seal => {
                    wal.seal();
                }
                StagedOp::WriteSealed => {
                    wal.write_sealed();
                }
                StagedOp::ForceWritten => {
                    let durable = wal.force_written();
                    ack_up_to(&commits, durable, &mut acked);
                }
                StagedOp::Flush => {
                    let durable = wal.flush();
                    ack_up_to(&commits, durable, &mut acked);
                }
                StagedOp::Hold { which } => {
                    wal.set_hold(match which {
                        0 => WalHold::None,
                        1 => WalHold::BeforeSeal,
                        2 => WalHold::BeforeWrite,
                        _ => WalHold::BeforeForce,
                    });
                }
            }
            // The watermark may never outrun an ack the router would
            // withhold: everything acked is within the durable prefix.
            let durable = wal.flushed();
            for &txn in &acked {
                let (_, end) = commits.iter().find(|(t, _)| *t == txn).expect("acked commit");
                prop_assert!(*end <= durable);
            }
        }
        // Crash with a torn tail cut anywhere into the written-not-forced
        // remainder, the sealed shadow buffer, and the active buffer.
        let crashed = Wal::from_bytes(wal.crash_bytes(extra));
        let survived: Vec<u64> = crashed
            .replay()
            .into_iter()
            .filter_map(|(_, rec)| match rec {
                LogRecord::Commit { txn } => Some(txn.seq),
                _ => None,
            })
            .collect();
        for txn in &acked {
            prop_assert!(
                survived.contains(txn),
                "acked commit {txn} vanished from the crash image (extra={extra})"
            );
        }
    }

    /// Sequential oracle: arbitrary programs keep the horizon monotone,
    /// forces physical-exactly-when-advancing, and the durable prefix
    /// replayable.
    #[test]
    fn force_is_idempotent_and_monotone_sequentially(program in ops()) {
        let wal = Wal::new();
        run_program(&wal, 0, &program);
        // Accounting: never more physical forces than force/flush calls,
        // and the horizon never outruns the appended bytes.
        assert!(wal.flushed() <= wal.len());
        // The durable prefix replays record-for-record (no torn records
        // from force/append interleaving).
        let replayed = wal.replay();
        for (lsn, _) in &replayed {
            assert!(*lsn < wal.flushed());
        }
    }

    /// Concurrent callers: three threads race independent programs on one
    /// log. Every per-call contract from the sequential case must survive
    /// interference, and the final log must replay every surviving append.
    #[test]
    fn force_contracts_hold_under_concurrent_callers(
        a in ops(), b in ops(), c in ops()
    ) {
        let wal = Arc::new(Wal::new());
        let programs = [a, b, c];
        let total_appends: usize = programs
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Append { .. }))
            .count();
        let handles: Vec<_> = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| {
                let wal = Arc::clone(&wal);
                thread::spawn(move || run_program(&wal, i as u16, &program))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        wal.flush();
        let replayed = wal.replay();
        assert_eq!(replayed.len(), total_appends, "no append lost or torn");
        // Every record in the durable prefix decodes; LSNs strictly
        // increase (appends serialized under the WAL lock, no tearing).
        let mut prev: Option<Lsn> = None;
        for (lsn, _) in &replayed {
            if let Some(p) = prev {
                assert!(*lsn > p, "replay LSNs not strictly increasing");
            }
            prev = Some(*lsn);
        }
        assert_eq!(wal.flushed(), wal.len(), "final flush covers the log");
    }
}
