//! Smoke sweep of the chaos harness: a small, fixed seed range over both
//! transports on every test run. The nightly CI lane (and `fgs-chaos`)
//! runs the wide sweep; this keeps the harness itself honest in tier-1.
//!
//! `FGS_CHAOS_SEEDS` overrides the number of seeds per mode.

use fgs_harness::run::{run_seed, Mode};

fn seeds() -> u64 {
    if let Ok(v) = std::env::var("FGS_CHAOS_SEEDS") {
        return v
            .parse()
            .unwrap_or_else(|e| panic!("FGS_CHAOS_SEEDS={v:?}: {e}"));
    }
    // Debug builds pay ~4-5x per run; keep the default sweep short.
    if cfg!(debug_assertions) {
        4
    } else {
        12
    }
}

fn sweep(mode: Mode) {
    for seed in 0..seeds() {
        if let Err(e) = run_seed(seed, mode) {
            panic!("chaos run failed ({mode:?}): {e}");
        }
    }
}

#[test]
fn chaos_smoke_channel() {
    sweep(Mode::Channel);
}

#[test]
fn chaos_smoke_tcp() {
    sweep(Mode::Tcp);
}
