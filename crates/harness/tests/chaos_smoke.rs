//! Smoke sweep of the chaos harness: a small, fixed seed range over both
//! transports on every test run. The nightly CI lane (and `fgs-chaos`)
//! runs the wide sweep; this keeps the harness itself honest in tier-1.
//!
//! `FGS_CHAOS_SEEDS` overrides the number of seeds per mode.

use fgs_harness::run::{run_seed, run_seed_hold, Mode};
use fgs_pagestore::WalHold;

fn seeds() -> u64 {
    if let Ok(v) = std::env::var("FGS_CHAOS_SEEDS") {
        return v
            .parse()
            .unwrap_or_else(|e| panic!("FGS_CHAOS_SEEDS={v:?}: {e}"));
    }
    // Debug builds pay ~4-5x per run; keep the default sweep short.
    if cfg!(debug_assertions) {
        4
    } else {
        12
    }
}

fn sweep(mode: Mode) {
    for seed in 0..seeds() {
        if let Err(e) = run_seed(seed, mode) {
            panic!("chaos run failed ({mode:?}): {e}");
        }
    }
}

#[test]
fn chaos_smoke_channel() {
    sweep(Mode::Channel);
}

#[test]
fn chaos_smoke_tcp() {
    sweep(Mode::Tcp);
}

/// Pins every WAL freeze point in turn so each stage boundary of the
/// asynchronous durability pipeline (appended-not-forced,
/// sealed-not-written, written-not-forced) is crash-tested every run,
/// not just on the seeds that happen to draw it.
fn hold_sweep(mode: Mode) {
    let txns = if cfg!(debug_assertions) { 12 } else { 30 };
    let holds = [
        WalHold::BeforeSeal,
        WalHold::BeforeWrite,
        WalHold::BeforeForce,
    ];
    let per_hold = (seeds() / 3).max(1);
    for hold in holds {
        for seed in 0..per_hold {
            if let Err(e) = run_seed_hold(seed, mode, txns, Some(hold)) {
                panic!("chaos hold run failed ({mode:?}, {hold:?}): {e}");
            }
        }
    }
}

#[test]
fn chaos_hold_channel() {
    hold_sweep(Mode::Channel);
}

#[test]
fn chaos_hold_tcp() {
    hold_sweep(Mode::Tcp);
}
