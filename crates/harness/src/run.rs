//! The seeded chaos run: drives the real engine over a faulty transport
//! and a faulty disk, crashes it mid-flight, recovers, and hands the
//! recorded history to the oracle.
//!
//! One run is entirely derived from a single `u64` seed: the protocol,
//! the shape of the database, the workload mix, the message-fault
//! schedule ([`ChaosConfig`]), the storage-fault plan ([`FaultPlan`]),
//! the crash point, and the torn log tail. Thread interleaving remains
//! nondeterministic, but every *injected* event is seed-derived, and the
//! oracle (see [`crate::oracle`]) is sound under any interleaving — so a
//! seed that fails once points at the schedule that can fail, and
//! rerunning it explores the same fault plan until the interleaving
//! recurs.
//!
//! A run has two phases. **Phase 1** applies the full fault plan, then
//! draws a *crash line*: the frozen flag is raised, the disk stops
//! accepting writes, and the log is captured with a torn tail — commits
//! acknowledged before the line must survive recovery; later ones are
//! ghosts. **Phase 2** recovers the crash image twice (the two passes
//! must agree — recovery is deterministic), restarts the server over it
//! under a bumped transaction epoch, sweeps every object to check
//! durability, and runs a short clean workload to prove the recovered
//! database still serializes.

use crate::history::{decode_version, encode_stamp, Outcome, Stamp, TxnRecord, Version, STAMP_LEN};
use crate::oracle::{check_history, check_recovery, OracleReport};
use fgs_core::{Oid, PageId, Protocol};
use fgs_oodb::{
    serve_tcp_recover, serve_tcp_with_disk, ChaosConfig, EngineConfig, Oodb, RemoteClient, Session,
    TransportKind, TxnError,
};
use fgs_pagestore::{FaultPlan, FaultyDisk, MemDisk, Store, WalHold};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which transport the run drives the engine over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Embedded engine over in-process channels (chaos on the ports).
    Channel,
    /// Out-of-process shape: a TCP server plus remote clients with
    /// chaos on both wire directions and reconnection on severance.
    Tcp,
}

/// What a clean run reports.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The seed that generated everything.
    pub seed: u64,
    /// The transport the run drove.
    pub mode: Mode,
    /// The protocol under test.
    pub protocol: Protocol,
    /// Oracle report for the faulty pre-crash phase.
    pub phase1: OracleReport,
    /// Oracle report for the clean post-recovery phase.
    pub phase2: OracleReport,
    /// Storage faults actually injected.
    pub disk_faults: u64,
    /// Transactions the recovery pass redid / undid.
    pub recovered_winners: usize,
    /// Transactions the recovery pass rolled back.
    pub recovered_losers: usize,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything phase 1 needs, derived from the seed.
struct Plan {
    config: EngineConfig,
    chaos: ChaosConfig,
    faults: FaultPlan,
    txns_per_client: usize,
    freeze_after: usize,
    torn_tail: usize,
    hot_objects: usize,
    workload_seed: u64,
}

fn derive_plan(seed: u64, mode: Mode, txns_per_client: usize) -> Plan {
    let mut s = seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut r = move |m: u64| splitmix64(&mut s) % m;

    let protocol = Protocol::ALL[(r(5)) as usize];
    let n_clients = 2 + r(3) as u16; // 2..=4
    let db_pages = 4 + r(4) as u32; // 4..=7
    let config = EngineConfig {
        protocol,
        db_pages,
        objects_per_page: 4,
        object_size: STAMP_LEN,
        page_size: 256,
        n_clients,
        client_cache_pages: 2 + r(4) as usize,
        server_pool_pages: 8,
        server_workers: 1 + r(3) as usize,
        group_commit_batch: 1 + r(4) as usize,
        paranoid: true,
        transport: match mode {
            Mode::Channel => TransportKind::Channel,
            Mode::Tcp => TransportKind::Tcp, // unused: phase 1 runs serve_tcp
        },
        txn_epoch: 0,
        chaos: None, // set per phase below
    };
    let chaos_seed = {
        let mut x = seed ^ 0xC4A5;
        splitmix64(&mut x)
    };
    let chaos = ChaosConfig {
        seed: chaos_seed,
        delay_per_10k: r(1200) as u32,
        max_delay_us: 1 + r(300),
        drop_per_10k: r(70) as u32,
        dup_per_10k: r(70) as u32,
        reorder_per_10k: r(70) as u32,
        reset_per_10k: r(70) as u32,
        max_events: 1 + r(8) as u32,
    };
    let faults = FaultPlan {
        seed: seed ^ 0xF417,
        write_fault_per_10k: r(40) as u32,
        read_fault_per_10k: r(20) as u32,
        max_faults: r(4),
        // Park the WAL pipeline at a seed-chosen stage boundary when the
        // crash line is drawn, so crash images routinely carry
        // appended-not-forced and sealed-not-written tails.
        wal_hold: match r(4) {
            0 => WalHold::None,
            1 => WalHold::BeforeSeal,
            2 => WalHold::BeforeWrite,
            _ => WalHold::BeforeForce,
        },
    };
    let total = txns_per_client * n_clients as usize;
    Plan {
        config,
        chaos,
        faults,
        txns_per_client,
        // Crash somewhere in the back half of the workload.
        freeze_after: total / 2 + (r(u64::from(total as u32 / 2).max(1)) as usize),
        torn_tail: r(80) as usize,
        hot_objects: 6,
        workload_seed: seed ^ 0x57A9,
    }
}

fn all_objects(config: &EngineConfig) -> Vec<Oid> {
    (0..config.db_pages)
        .flat_map(|p| (0..config.objects_per_page).map(move |s| Oid::new(PageId(p), s)))
        .collect()
}

/// Is the connection behind this error worth recycling? `Server` is
/// ambiguous (a server-side abort and a dead connection surface the
/// same), so the driver recycles on both — a spurious reconnect is
/// harmless, a missed one wedges the client.
fn conn_suspect(e: &TxnError) -> bool {
    matches!(e, TxnError::Server | TxnError::Closed | TxnError::Io(_))
}

/// Runs one transaction on `session`, recording what happened.
/// `Err` means the client read bytes that decode to nothing sane —
/// corruption, reported immediately.
fn attempt_txn(
    session: &Session,
    client: u16,
    counter: &mut u64,
    rng: &mut u64,
    objects: &[Oid],
    hot: usize,
    frozen: &AtomicBool,
) -> Result<(Option<TxnRecord>, bool), String> {
    if let Err(e) = session.begin() {
        // A poisoned or mid-teardown session; nothing was attempted.
        return Ok((None, !conn_suspect(&e)));
    }
    let n_ops = 1 + (splitmix64(rng) % 3) as usize;
    let mut ops = Vec::with_capacity(n_ops);
    let mut picked: Vec<Oid> = Vec::with_capacity(n_ops);
    while picked.len() < n_ops {
        // Mostly the hot set, to provoke conflicts and callbacks.
        let pool = if splitmix64(rng) % 4 < 3 {
            hot.min(objects.len())
        } else {
            objects.len()
        };
        let oid = objects[(splitmix64(rng) as usize) % pool];
        if !picked.contains(&oid) {
            picked.push(oid);
        }
    }
    for oid in picked {
        let observed = match session.read(oid) {
            Ok(bytes) => decode_version(&bytes)
                .map_err(|e| format!("client {client} read corrupt {oid:?}: {e}"))?,
            Err(e) => {
                if !conn_suspect(&e) {
                    let _ = session.abort();
                }
                return Ok((
                    Some(TxnRecord {
                        client,
                        ops,
                        outcome: Outcome::Aborted,
                        pre_crash: false,
                    }),
                    !conn_suspect(&e),
                ));
            }
        };
        // Read-modify-write: two thirds of the touched objects are
        // written back with a fresh stamp.
        let wrote = if splitmix64(rng) % 3 < 2 {
            *counter += 1;
            let stamp = Stamp {
                client,
                counter: *counter,
            };
            match session.write(oid, encode_stamp(stamp)) {
                Ok(()) => Some(stamp),
                Err(e) => {
                    if !conn_suspect(&e) {
                        let _ = session.abort();
                    }
                    ops.push(crate::history::OpRecord {
                        oid,
                        observed,
                        wrote: None,
                    });
                    return Ok((
                        Some(TxnRecord {
                            client,
                            ops,
                            outcome: Outcome::Aborted,
                            pre_crash: false,
                        }),
                        !conn_suspect(&e),
                    ));
                }
            }
        } else {
            None
        };
        ops.push(crate::history::OpRecord {
            oid,
            observed,
            wrote,
        });
    }
    match session.commit() {
        Ok(()) => {
            // The ack happened before the flag read: if the crash line
            // is not yet drawn, the commit's log force is provably in
            // the captured image.
            let pre_crash = !frozen.load(Ordering::SeqCst);
            Ok((
                Some(TxnRecord {
                    client,
                    ops,
                    outcome: Outcome::Committed,
                    pre_crash,
                }),
                true,
            ))
        }
        Err(e) => {
            let outcome = if conn_suspect(&e) {
                // The commit left this client; whether it landed is
                // unknowable here. The oracle resolves by observation.
                Outcome::InDoubt
            } else {
                Outcome::Aborted
            };
            if !conn_suspect(&e) {
                let _ = session.abort();
            }
            Ok((
                Some(TxnRecord {
                    client,
                    ops,
                    outcome,
                    pre_crash: false,
                }),
                !conn_suspect(&e),
            ))
        }
    }
}

/// Phase-1 worker over TCP: reconnects (with a fresh chaos stream) every
/// time the schedule severs the connection.
fn tcp_worker(
    addr: std::net::SocketAddr,
    client: u16,
    chaos: ChaosConfig,
    budget: usize,
    objects: &[Oid],
    hot: usize,
    frozen: &AtomicBool,
    done: &AtomicUsize,
    seed: u64,
) -> Result<Vec<TxnRecord>, String> {
    let mut recs = Vec::new();
    let mut counter = 0u64;
    let mut rng = seed ^ (0xC11E_u64 << 16) ^ u64::from(client);
    let mut attempt = 0u64;
    let mut conn: Option<RemoteClient> = None;
    for _ in 0..budget {
        if frozen.load(Ordering::SeqCst) {
            break;
        }
        if conn.is_none() {
            conn = reconnect(addr, client, chaos, &mut attempt, frozen);
            if conn.is_none() {
                break; // frozen or the server stopped taking us back
            }
        }
        let session = conn.as_ref().expect("connected").session();
        let (rec, alive) = attempt_txn(
            &session,
            client,
            &mut counter,
            &mut rng,
            objects,
            hot,
            frozen,
        )?;
        if let Some(rec) = rec {
            recs.push(rec);
            done.fetch_add(1, Ordering::SeqCst);
        }
        if !alive {
            conn = None; // drop reconnects cleanly; the server purges us
        }
    }
    Ok(recs)
}

/// Reconnects with bounded patience; `None` once the crash line is drawn
/// or the server refuses long enough.
fn reconnect(
    addr: std::net::SocketAddr,
    client: u16,
    chaos: ChaosConfig,
    attempt: &mut u64,
    frozen: &AtomicBool,
) -> Option<RemoteClient> {
    for _ in 0..800 {
        if frozen.load(Ordering::SeqCst) {
            return None;
        }
        *attempt += 1;
        // A fresh stream per connection: the schedule is per-connection
        // deterministic, independent of how many times we died before.
        let stream = (u64::from(client) << 32) | *attempt;
        match RemoteClient::connect_chaos(addr, Some(client), chaos, stream) {
            Ok(c) => return Some(c),
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    None
}

/// Phase-1 worker over the embedded engine: the session cannot
/// reconnect, so a severed port ends the worker early.
fn channel_worker(
    session: &Session,
    client: u16,
    budget: usize,
    objects: &[Oid],
    hot: usize,
    frozen: &AtomicBool,
    done: &AtomicUsize,
    seed: u64,
) -> Result<Vec<TxnRecord>, String> {
    let mut recs = Vec::new();
    let mut counter = 0u64;
    let mut rng = seed ^ (0xC11E_u64 << 16) ^ u64::from(client);
    for _ in 0..budget {
        if frozen.load(Ordering::SeqCst) {
            break;
        }
        let (rec, alive) = attempt_txn(
            session,
            client,
            &mut counter,
            &mut rng,
            objects,
            hot,
            frozen,
        )?;
        if let Some(rec) = rec {
            recs.push(rec);
            done.fetch_add(1, Ordering::SeqCst);
        }
        if !alive {
            break; // the embedded runtime is poisoned for good
        }
    }
    Ok(recs)
}

/// Waits for the workload to reach the crash point (or wind down), then
/// draws the crash line. Returns once the flag is up and the disk is
/// frozen.
//
// The wall-clock read below is a 60s hang backstop only: it bounds how
// long a wedged run can stall CI and never feeds the seeded schedule, so
// results stay bit-identical for a given seed.
// fgs-lint: allow(determinism)
fn await_crash_point(
    done: &AtomicUsize,
    finished_workers: &AtomicUsize,
    n_workers: usize,
    freeze_after: usize,
    frozen: &AtomicBool,
    disk: &FaultyDisk,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while done.load(Ordering::SeqCst) < freeze_after
        && finished_workers.load(Ordering::SeqCst) < n_workers
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Order matters: the flag first (commits acked from here on are
    // ghosts), then the disk. The log capture happens after this
    // returns, so every pre-flag ack's force is inside the capture.
    frozen.store(true, Ordering::SeqCst);
    disk.freeze();
}

/// Reads every object through a recovered bare [`Store`] — the second,
/// independent recovery pass for the convergence check.
fn bare_recovery_sweep(
    disk: Arc<MemDisk>,
    crash_log: Vec<u8>,
    config: &EngineConfig,
    objects: &[Oid],
) -> Result<(HashMap<Oid, Version>, usize, usize), String> {
    let (store, report) =
        Store::recover(disk, crash_log, config.server_pool_pages, config.db_pages)
            .map_err(|e| format!("bare recovery failed: {e}"))?;
    let mut state = HashMap::new();
    for &oid in objects {
        let bytes = store
            .read_object(oid)
            .map_err(|e| format!("bare read {oid:?}: {e}"))?
            .ok_or_else(|| format!("bare recovery lost {oid:?}"))?;
        state.insert(
            oid,
            decode_version(&bytes).map_err(|e| format!("bare {oid:?}: {e}"))?,
        );
    }
    Ok((state, report.redone, report.undone))
}

/// Sweeps every object through a live session, one page per transaction.
fn session_sweep(
    session: &Session,
    objects: &[Oid],
    per_txn: usize,
) -> Result<HashMap<Oid, Version>, String> {
    let mut state = HashMap::new();
    for chunk in objects.chunks(per_txn.max(1)) {
        let got: Vec<(Oid, Vec<u8>)> = session
            .run_txn(16, |t| {
                chunk
                    .iter()
                    .map(|&oid| t.read(oid).map(|b| (oid, b)))
                    .collect()
            })
            .map_err(|e| format!("sweep failed: {e}"))?;
        for (oid, bytes) in got {
            state.insert(
                oid,
                decode_version(&bytes).map_err(|e| format!("sweep {oid:?}: {e}"))?,
            );
        }
    }
    Ok(state)
}

/// The clean phase-2 workload: a short burst of RMW transactions over
/// the recovered database. Counters restart far above phase 1's so no
/// stamp can ever collide across the crash.
fn phase2_workload(
    sessions: &[Session],
    objects: &[Oid],
    hot: usize,
    budget: usize,
    seed: u64,
) -> Result<Vec<TxnRecord>, String> {
    let frozen = AtomicBool::new(false); // no crash line in phase 2
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, session) in sessions.iter().enumerate() {
            let frozen = &frozen;
            let done = &done;
            handles.push(scope.spawn(move || {
                let client = i as u16;
                let mut counter = 1u64 << 32;
                let mut rng = seed ^ 0xF2F2 ^ (u64::from(client) << 8);
                let mut recs = Vec::new();
                for _ in 0..budget {
                    let (rec, alive) = attempt_txn(
                        session,
                        client,
                        &mut counter,
                        &mut rng,
                        objects,
                        hot,
                        frozen,
                    )?;
                    if let Some(rec) = rec {
                        recs.push(rec);
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                    if !alive {
                        return Err(format!(
                            "client {client} lost its connection in the clean phase"
                        ));
                    }
                }
                Ok(recs)
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("phase-2 worker")?);
        }
        Ok(all)
    })
}

/// Runs one full seeded chaos run; `Err` carries the violation (always
/// reproducible from the seed and mode alone).
pub fn run_seed(seed: u64, mode: Mode) -> Result<RunSummary, String> {
    let txns_per_client = if cfg!(debug_assertions) { 12 } else { 30 };
    run_seed_with(seed, mode, txns_per_client)
}

/// [`run_seed`] with an explicit per-client transaction budget.
pub fn run_seed_with(seed: u64, mode: Mode, txns_per_client: usize) -> Result<RunSummary, String> {
    run_seed_hold(seed, mode, txns_per_client, None)
}

/// [`run_seed_with`] with the crash line's WAL freeze point forced to
/// `hold` instead of seed-derived — the hold-sweep tests pin each stage
/// boundary in turn so every crash point is exercised every run.
pub fn run_seed_hold(
    seed: u64,
    mode: Mode,
    txns_per_client: usize,
    hold: Option<WalHold>,
) -> Result<RunSummary, String> {
    let mut plan = derive_plan(seed, mode, txns_per_client);
    if let Some(h) = hold {
        plan.faults.wal_hold = h;
    }
    let objects = all_objects(&plan.config);
    let fail = |phase: &str, e: String| format!("seed {seed} ({mode:?}, {phase}): {e}");

    // ------------------------------------------------------------------
    // Phase 1: the faulty run, up to the crash line.
    // ------------------------------------------------------------------
    let disk = FaultyDisk::new(Arc::new(MemDisk::new(plan.config.page_size)));
    let frozen = AtomicBool::new(false);
    let done = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let n_workers = plan.config.n_clients as usize;

    let mut phase1: Vec<TxnRecord> = Vec::new();
    let crash_log: Vec<u8>;

    match mode {
        Mode::Tcp => {
            let mut config = plan.config.clone();
            config.chaos = Some(plan.chaos);
            let server = serve_tcp_with_disk(config, "127.0.0.1:0", disk.clone(), true)
                .map_err(|e| fail("serve", e.to_string()))?;
            disk.arm(plan.faults); // armed only after initial load
            let addr = server.local_addr();
            let (log, results) = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for c in 0..plan.config.n_clients {
                    let objects = &objects;
                    let frozen = &frozen;
                    let done = &done;
                    let finished = &finished;
                    let chaos = plan.chaos;
                    let wseed = plan.workload_seed;
                    let budget = plan.txns_per_client;
                    let hot = plan.hot_objects;
                    handles.push(scope.spawn(move || {
                        let r =
                            tcp_worker(addr, c, chaos, budget, objects, hot, frozen, done, wseed);
                        finished.fetch_add(1, Ordering::SeqCst);
                        r
                    }));
                }
                await_crash_point(
                    &done,
                    &finished,
                    n_workers,
                    plan.freeze_after,
                    &frozen,
                    &disk,
                );
                // The log capture: strictly after the crash line, with
                // the WAL pipeline parked at the plan's stage boundary.
                // Releasing the hold afterwards lets the writer drain,
                // so in-flight (ghost) commits unwedge before the join.
                server.wal_hold(plan.faults.wal_hold);
                let log = server.crash_log(plan.torn_tail);
                server.wal_hold(WalHold::None);
                let results = handles
                    .into_iter()
                    .map(|h| h.join().expect("phase-1 worker"))
                    .collect::<Vec<_>>();
                (log, results)
            });
            crash_log = log;
            drop(server); // its checkpoint lands on the frozen disk: eaten
            for r in results {
                phase1.extend(r.map_err(|e| fail("phase1", e))?);
            }
        }
        Mode::Channel => {
            let mut config = plan.config.clone();
            config.chaos = Some(plan.chaos);
            config.transport = TransportKind::Channel;
            let db = Oodb::open_with_disk(config, disk.clone(), true)
                .map_err(|e| fail("open", e.to_string()))?;
            disk.arm(plan.faults);
            let (log, results) = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for c in 0..plan.config.n_clients {
                    let session = db.session(c);
                    let objects = &objects;
                    let frozen = &frozen;
                    let done = &done;
                    let finished = &finished;
                    let wseed = plan.workload_seed;
                    let budget = plan.txns_per_client;
                    let hot = plan.hot_objects;
                    handles.push(scope.spawn(move || {
                        let r =
                            channel_worker(&session, c, budget, objects, hot, frozen, done, wseed);
                        finished.fetch_add(1, Ordering::SeqCst);
                        r
                    }));
                }
                await_crash_point(
                    &done,
                    &finished,
                    n_workers,
                    plan.freeze_after,
                    &frozen,
                    &disk,
                );
                // As in the TCP arm: capture under the hold, then
                // release it so parked ghost acks unwedge the workers.
                db.wal_hold(plan.faults.wal_hold);
                let log = db.crash_log(plan.torn_tail);
                db.wal_hold(WalHold::None);
                let results = handles
                    .into_iter()
                    .map(|h| h.join().expect("phase-1 worker"))
                    .collect::<Vec<_>>();
                (log, results)
            });
            crash_log = log;
            drop(db);
            for r in results {
                phase1.extend(r.map_err(|e| fail("phase1", e))?);
            }
        }
    }

    // The faulty history must serialize on its own.
    let empty_initial = HashMap::new();
    let phase1_report =
        check_history(&phase1, &empty_initial).map_err(|e| fail("oracle/phase1", e))?;

    // ------------------------------------------------------------------
    // Phase 2: recover twice, check durability, run clean.
    // ------------------------------------------------------------------
    let snap_a = disk.snapshot();
    let snap_b = disk.snapshot();
    let disk_faults = disk.injected_faults();

    // Independent pass for the convergence check.
    let (bare_state, redone, undone) =
        bare_recovery_sweep(snap_b, crash_log.clone(), &plan.config, &objects)
            .map_err(|e| fail("recovery", e))?;

    let mut config2 = plan.config.clone();
    config2.chaos = None;
    config2.txn_epoch = 1; // a new incarnation over the same log
    let phase2_budget = (plan.txns_per_client / 3).max(4);

    let (recovered, phase2) = match mode {
        Mode::Tcp => {
            let (server, _report) =
                serve_tcp_recover(config2.clone(), "127.0.0.1:0", snap_a, crash_log)
                    .map_err(|e| fail("serve_tcp_recover", e.to_string()))?;
            let addr = server.local_addr();
            let clients: Vec<RemoteClient> = (0..config2.n_clients)
                .map(|c| {
                    RemoteClient::connect_retry(addr, Some(c), 50, Duration::from_millis(5))
                        .map_err(|e| fail("phase2 connect", e.to_string()))
                })
                .collect::<Result<_, _>>()?;
            let sessions: Vec<Session> = clients.iter().map(|c| c.session()).collect();
            let recovered = session_sweep(
                &sessions[0],
                &objects,
                plan.config.objects_per_page as usize,
            )
            .map_err(|e| fail("sweep", e))?;
            let phase2 = phase2_workload(
                &sessions,
                &objects,
                plan.hot_objects,
                phase2_budget,
                plan.workload_seed ^ 0xBEEF,
            )
            .map_err(|e| fail("phase2", e))?;
            server.check_server_invariants();
            for c in clients {
                c.shutdown();
            }
            server.shutdown();
            (recovered, phase2)
        }
        Mode::Channel => {
            config2.transport = TransportKind::Channel;
            let (db, _report) = Oodb::recover(config2.clone(), snap_a, crash_log)
                .map_err(|e| fail("recover", e.to_string()))?;
            let sessions: Vec<Session> = (0..config2.n_clients).map(|c| db.session(c)).collect();
            let recovered = session_sweep(
                &sessions[0],
                &objects,
                plan.config.objects_per_page as usize,
            )
            .map_err(|e| fail("sweep", e))?;
            let phase2 = phase2_workload(
                &sessions,
                &objects,
                plan.hot_objects,
                phase2_budget,
                plan.workload_seed ^ 0xBEEF,
            )
            .map_err(|e| fail("phase2", e))?;
            db.check_server_invariants();
            db.shutdown();
            (recovered, phase2)
        }
    };

    // Recovery is deterministic: both passes must agree exactly.
    if recovered != bare_state {
        let diff: Vec<_> = objects
            .iter()
            .filter(|o| recovered.get(o) != bare_state.get(o))
            .collect();
        return Err(fail(
            "convergence",
            format!("two recovery passes disagree on {diff:?}"),
        ));
    }
    // Durability: every pre-crash-acknowledged commit survived.
    check_recovery(&phase1, &empty_initial, &recovered).map_err(|e| fail("oracle/recovery", e))?;
    // The recovered database still serializes.
    let phase2_report = check_history(&phase2, &recovered).map_err(|e| fail("oracle/phase2", e))?;

    Ok(RunSummary {
        seed,
        mode,
        protocol: plan.config.protocol,
        phase1: phase1_report,
        phase2: phase2_report,
        disk_faults,
        recovered_winners: redone,
        recovered_losers: undone,
    })
}
