//! Deterministic fault-injection harness with a serializability oracle.
//!
//! This crate drives the *real* `fgs-oodb` engine — not the simulator —
//! through seeded chaos: message faults on the transport (delay, drop,
//! duplicate, reorder, reset), storage faults on the disk (transient IO
//! errors), and a mid-run crash with a torn log tail. Everything injected
//! is derived from one `u64` seed, so a failure report is reproducible
//! from the seed and transport mode alone.
//!
//! The three layers:
//!
//! - [`history`] — the stamped-value vocabulary: every write is a unique
//!   `(client, counter)` stamp, so any byte string read back names
//!   exactly one write (or the initial state, or corruption).
//! - [`oracle`] — the checker: reconstructs per-object version chains
//!   from observations, detects lost updates (forks), dirty reads of
//!   aborted writes (G1a), and serializability violations (cycles in the
//!   direct serialization graph); resolves in-doubt commits by
//!   observation; and after a crash checks that every commit
//!   acknowledged before the crash line survived recovery.
//! - [`run`] — the driver: derives a full fault plan from the seed,
//!   runs a hot-spot read-modify-write workload over the embedded or
//!   TCP transport, crashes the server, recovers twice (the passes must
//!   agree), and hands both phases' histories to the oracle.
//!
//! The `fgs-chaos` binary sweeps seed ranges; `tests/chaos_smoke.rs`
//! keeps a small sweep in the regular test suite.

pub mod history;
pub mod oracle;
pub mod run;

pub use history::{
    decode_version, encode_stamp, OpRecord, Outcome, Stamp, TxnRecord, Version, STAMP_LEN,
    STAMP_MAGIC,
};
pub use oracle::{check_history, check_recovery, OracleReport};
pub use run::{run_seed, run_seed_with, Mode, RunSummary};
