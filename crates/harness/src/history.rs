//! The history a chaos run records: every transaction each client
//! attempted, what it observed, what it wrote, and how it ended.
//!
//! Every value the workload writes is a 16-byte **stamp** — a magic tag,
//! the writing client, and that client's monotone write counter — so any
//! bytes read back identify exactly one write in the history (or the
//! zero-filled initial state). The oracle reconstructs per-object version
//! chains from these observations alone; it never needs to trust clocks
//! or cross-thread ordering, which is what makes it sound under the
//! harness's residual thread-scheduling nondeterminism.

use fgs_core::Oid;

/// Byte length of a stamp (and of every object in a chaos run).
pub const STAMP_LEN: usize = 16;

/// Tag distinguishing a stamped value from the zero-filled initial state
/// (and from stray corruption, which the oracle reports).
pub const STAMP_MAGIC: u16 = 0xFA57;

/// Identity of one write: the writing client and its write counter.
/// Counters are per-client monotone and never reused — across
/// transactions, reconnects, and the crash/recovery boundary — so a
/// stamp names a unique write in the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Stamp {
    /// The writing client's id.
    pub client: u16,
    /// The client's write counter at the time of the write.
    pub counter: u64,
}

/// A version of an object: the initial zero-filled state, or a stamp.
pub type Version = Option<Stamp>;

/// Encodes a stamp as the `STAMP_LEN`-byte value the workload writes.
pub fn encode_stamp(stamp: Stamp) -> Vec<u8> {
    let mut v = vec![0u8; STAMP_LEN];
    v[0..2].copy_from_slice(&STAMP_MAGIC.to_le_bytes());
    v[2..4].copy_from_slice(&stamp.client.to_le_bytes());
    v[4..12].copy_from_slice(&stamp.counter.to_le_bytes());
    v
}

/// Decodes bytes read from the database into a version.
///
/// Errors mean corruption: bytes that are neither the initial state nor
/// a well-formed stamp can only come from a torn or misdirected write.
pub fn decode_version(bytes: &[u8]) -> Result<Version, String> {
    if bytes.len() < STAMP_LEN {
        return Err(format!("short object: {} bytes", bytes.len()));
    }
    let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
    if magic == 0 {
        if bytes.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        return Err(format!("zero magic with nonzero payload: {bytes:?}"));
    }
    if magic != STAMP_MAGIC {
        return Err(format!("bad stamp magic {magic:#06x}: {bytes:?}"));
    }
    Ok(Some(Stamp {
        client: u16::from_le_bytes([bytes[2], bytes[3]]),
        counter: u64::from_le_bytes(bytes[4..12].try_into().expect("stamp len")),
    }))
}

/// How a transaction ended, from its client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The commit was acknowledged.
    Committed,
    /// The transaction never reached a commit attempt (an operation
    /// failed, or the client aborted it). Its writes cannot exist
    /// anywhere: commit data only ships with the commit request.
    Aborted,
    /// A commit was *attempted* but the connection died before the
    /// answer: the server may or may not have committed it. The oracle
    /// resolves these by observation.
    InDoubt,
}

/// One read-modify-write step inside a transaction: the version observed
/// by the read, and the stamp written back over it (if this step wrote).
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The object touched.
    pub oid: Oid,
    /// What the read observed.
    pub observed: Version,
    /// The stamp written over it, if the step wrote.
    pub wrote: Option<Stamp>,
}

/// One attempted transaction.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// The issuing client.
    pub client: u16,
    /// The read-modify-write steps, in program order.
    pub ops: Vec<OpRecord>,
    /// How it ended.
    pub outcome: Outcome,
    /// True when the commit was acknowledged before the crash line was
    /// drawn (see `run`): such a commit's log force is provably inside
    /// the captured crash image, so recovery must preserve it. Commits
    /// acknowledged after the line are *ghosts* — the harness makes no
    /// durability claim either way.
    pub pre_crash: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_round_trip() {
        let s = Stamp {
            client: 3,
            counter: 0x0123_4567_89AB_CDEF,
        };
        assert_eq!(decode_version(&encode_stamp(s)), Ok(Some(s)));
        assert_eq!(decode_version(&[0u8; STAMP_LEN]), Ok(None));
    }

    #[test]
    fn corruption_is_detected() {
        assert!(decode_version(&[0u8; 4]).is_err(), "short");
        let mut zero_tail = vec![0u8; STAMP_LEN];
        zero_tail[7] = 9;
        assert!(
            decode_version(&zero_tail).is_err(),
            "zero magic, dirty tail"
        );
        let mut bad_magic = encode_stamp(Stamp {
            client: 0,
            counter: 1,
        });
        bad_magic[1] ^= 0xFF;
        assert!(decode_version(&bad_magic).is_err(), "bad magic");
    }
}
