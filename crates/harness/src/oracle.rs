//! The serializability oracle: decides whether a recorded history could
//! have been produced by *some* serial execution, and whether recovery
//! preserved every durable commit.
//!
//! The oracle works from observations alone. Because the workload obeys
//! a read-modify-write discipline (every write is preceded, in the same
//! transaction, by a read of the same object) and every written value is
//! a unique [`Stamp`], each object's committed writes form a **version
//! chain**: a write's parent is the version its preceding read observed.
//! From the chains the oracle checks:
//!
//! 1. **No lost updates** — two committed writes sharing a parent is a
//!    fork: both read the same version and both "won".
//! 2. **No aborted or phantom reads (G1a)** — a committed transaction
//!    may only observe the initial state or a non-aborted write from the
//!    history; anything else is a dirty read or corruption.
//! 3. **Serializability** — the direct serialization graph over
//!    committed transactions (WR, WW, and RW edges derived from the
//!    chains) must be acyclic.
//! 4. **Durability** ([`check_recovery`]) — after a crash, each object's
//!    recovered version must sit on a valid chain, with every
//!    pre-crash-acknowledged commit among its ancestors.
//!
//! **In-doubt resolution.** A transaction whose commit was cut off by a
//! connection fault may have committed server-side. The oracle resolves
//! these *by observation*: an in-doubt write that any committed
//! transaction observed must have committed (promote it); one that
//! nobody observed is invisible under the RMW discipline — whether the
//! server committed it or not, no committed state depends on it — so
//! treating it as aborted is sound for the serializability checks. (Its
//! possible presence in recovered state is still accepted by
//! [`check_recovery`].)

use crate::history::{Outcome, Stamp, TxnRecord, Version};
use fgs_core::Oid;
use std::collections::{BTreeMap, HashMap, HashSet};

/// What the oracle concluded about a violation-free history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Transactions committed (acknowledged, plus promoted in-doubt).
    pub committed: usize,
    /// Transactions that never committed.
    pub aborted: usize,
    /// In-doubt transactions promoted to committed by observation.
    pub promoted: usize,
    /// In-doubt transactions nobody observed (treated as aborted).
    pub invisible: usize,
    /// The longest version chain across all objects.
    pub max_chain_depth: usize,
}

/// The root version of `oid`: what the database held before this
/// history began (`None` = the zero-filled initial state).
fn root(initial: &HashMap<Oid, Version>, oid: Oid) -> Version {
    initial.get(&oid).copied().flatten()
}

/// Indexes every write in the history. Errors on a reused stamp or a
/// stamp claiming the wrong client — both harness bugs, not database
/// bugs, but they would unsound the oracle, so they are hard errors.
fn index_writes(txns: &[TxnRecord]) -> Result<HashMap<Stamp, (usize, Oid)>, String> {
    let mut writes = HashMap::new();
    for (i, t) in txns.iter().enumerate() {
        for op in &t.ops {
            if let Some(stamp) = op.wrote {
                if stamp.client != t.client {
                    return Err(format!(
                        "harness bug: txn of client {} wrote stamp {stamp:?}",
                        t.client
                    ));
                }
                if let Some(prev) = writes.insert(stamp, (i, op.oid)) {
                    return Err(format!("harness bug: stamp {stamp:?} reused ({prev:?})"));
                }
            }
        }
    }
    Ok(writes)
}

/// Resolves in-doubt transactions by observation: any in-doubt write
/// observed by a committed transaction is promoted to committed,
/// transitively.
fn resolve_statuses(
    txns: &[TxnRecord],
    writes: &HashMap<Stamp, (usize, Oid)>,
) -> (Vec<Outcome>, usize) {
    let mut status: Vec<Outcome> = txns.iter().map(|t| t.outcome).collect();
    let mut promoted = 0;
    loop {
        let mut changed = false;
        for i in 0..txns.len() {
            if status[i] != Outcome::Committed {
                continue;
            }
            for op in &txns[i].ops {
                if let Some(seen) = op.observed {
                    if let Some(&(w, _)) = writes.get(&seen) {
                        if status[w] == Outcome::InDoubt {
                            status[w] = Outcome::Committed;
                            promoted += 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (status, promoted)
}

/// Checks a history for lost updates, dirty/phantom reads, and
/// serialization-graph cycles. `initial` gives the version each object
/// held when the history began (empty map = fresh, zero-filled
/// database); pass the recovered state here when checking a post-crash
/// phase.
pub fn check_history(
    txns: &[TxnRecord],
    initial: &HashMap<Oid, Version>,
) -> Result<OracleReport, String> {
    let writes = index_writes(txns)?;
    let (status, promoted) = resolve_statuses(txns, &writes);

    // G1a and corruption: committed reads must observe the root or a
    // non-aborted write of the same object from this history.
    for (i, t) in txns.iter().enumerate() {
        if status[i] != Outcome::Committed {
            continue;
        }
        for op in &t.ops {
            let seen = op.observed;
            if seen == root(initial, op.oid) {
                continue;
            }
            let stamp = match seen {
                Some(s) => s,
                // Observed the zero state where a non-zero root was
                // expected: the root write vanished under us.
                None => {
                    return Err(format!(
                        "committed txn {i} read {:?} as initial, but its root is {:?}",
                        op.oid,
                        root(initial, op.oid)
                    ));
                }
            };
            match writes.get(&stamp) {
                None => {
                    return Err(format!(
                        "committed txn {i} observed unknown stamp {stamp:?} on {:?} (corruption)",
                        op.oid
                    ));
                }
                Some(&(w, woid)) => {
                    if woid != op.oid {
                        return Err(format!(
                            "stamp {stamp:?} written to {woid:?} observed on {:?} (misdirected)",
                            op.oid
                        ));
                    }
                    if status[w] == Outcome::Aborted {
                        return Err(format!(
                            "G1a: committed txn {i} observed {stamp:?} from aborted txn {w}"
                        ));
                    }
                }
            }
        }
    }

    // Version chains over committed writes: parent = the version the
    // write's own read observed. A shared parent is a lost update.
    let mut children: BTreeMap<Oid, HashMap<Version, Vec<Stamp>>> = BTreeMap::new();
    let mut committed_writes_per_oid: HashMap<Oid, usize> = HashMap::new();
    for (i, t) in txns.iter().enumerate() {
        if status[i] != Outcome::Committed {
            continue;
        }
        for op in &t.ops {
            if let Some(stamp) = op.wrote {
                children
                    .entry(op.oid)
                    .or_default()
                    .entry(op.observed)
                    .or_default()
                    .push(stamp);
                *committed_writes_per_oid.entry(op.oid).or_default() += 1;
            }
        }
    }
    let mut max_chain_depth = 0;
    // (oid, version) -> chain position, for edge construction below.
    let mut chains: HashMap<Oid, Vec<(Version, Option<usize>)>> = HashMap::new();
    for (&oid, kids) in &children {
        for (parent, stamps) in kids {
            if stamps.len() > 1 {
                return Err(format!(
                    "lost update on {oid:?}: {stamps:?} all committed over parent {parent:?}"
                ));
            }
        }
        // Linearize from the root. Readers of a version are attached
        // when edges are built.
        let mut order: Vec<(Version, Option<usize>)> = vec![(root(initial, oid), None)];
        let mut cur = root(initial, oid);
        let mut visited = 0;
        while let Some(next) = kids.get(&cur).map(|v| v[0]) {
            let &(writer, _) = writes.get(&next).expect("indexed committed write");
            order.push((Some(next), Some(writer)));
            cur = Some(next);
            visited += 1;
            if visited > txns.len() * 4 {
                return Err(format!("version chain on {oid:?} does not terminate"));
            }
        }
        if visited != committed_writes_per_oid[&oid] {
            return Err(format!(
                "broken chain on {oid:?}: {} committed writes, {visited} reachable from root",
                committed_writes_per_oid[&oid]
            ));
        }
        max_chain_depth = max_chain_depth.max(visited);
        chains.insert(oid, order);
    }

    // The direct serialization graph over committed transactions.
    let mut readers: HashMap<(Oid, Version), Vec<usize>> = HashMap::new();
    for (i, t) in txns.iter().enumerate() {
        if status[i] != Outcome::Committed {
            continue;
        }
        for op in &t.ops {
            readers.entry((op.oid, op.observed)).or_default().push(i);
        }
    }
    let n = txns.len();
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let add = |adj: &mut Vec<HashSet<usize>>, a: usize, b: usize| {
        if a != b {
            adj[a].insert(b);
        }
    };
    for (&oid, order) in &chains {
        for w in order.windows(2) {
            let (prev_version, prev_writer) = w[0];
            let (_, next_writer) = w[1];
            let next_writer = next_writer.expect("non-root has a writer");
            // WW: version order is commit order under 2PL.
            if let Some(pw) = prev_writer {
                add(&mut adj, pw, next_writer);
            }
            // WR: a version's writer precedes everyone who read it.
            // RW: a version's readers precede its overwriter.
            if let Some(rs) = readers.get(&(oid, prev_version)) {
                for &r in rs {
                    if let Some(pw) = prev_writer {
                        add(&mut adj, pw, r);
                    }
                    add(&mut adj, r, next_writer);
                }
            }
        }
        // WR edges into readers of the chain tip.
        if let Some(&(tip, Some(tip_writer))) = order.last() {
            if let Some(rs) = readers.get(&(oid, tip)) {
                for &r in rs {
                    add(&mut adj, tip_writer, r);
                }
            }
        }
    }
    if let Some(cycle) = find_cycle(&adj) {
        return Err(format!(
            "serialization cycle among committed txns {cycle:?}"
        ));
    }

    let mut report = OracleReport {
        promoted,
        max_chain_depth,
        ..OracleReport::default()
    };
    for s in &status {
        match s {
            Outcome::Committed => report.committed += 1,
            Outcome::Aborted => report.aborted += 1,
            Outcome::InDoubt => report.invisible += 1,
        }
    }
    Ok(report)
}

/// Iterative three-color DFS; returns the transactions on one cycle.
fn find_cycle(adj: &[HashSet<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = adj.len();
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, child iterator position).
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        color[start] = Color::Gray;
        let kids: Vec<usize> = adj[start].iter().copied().collect();
        stack.push((start, kids, 0));
        while let Some((node, kids, pos)) = stack.last_mut() {
            if *pos >= kids.len() {
                color[*node] = Color::Black;
                stack.pop();
                continue;
            }
            let next = kids[*pos];
            *pos += 1;
            match color[next] {
                Color::Gray => {
                    // Found a back edge: the cycle is the gray suffix.
                    let mut cycle: Vec<usize> = stack.iter().map(|(v, _, _)| *v).collect();
                    if let Some(p) = cycle.iter().position(|&v| v == next) {
                        cycle.drain(..p);
                    }
                    return Some(cycle);
                }
                Color::White => {
                    color[next] = Color::Gray;
                    let kids: Vec<usize> = adj[next].iter().copied().collect();
                    stack.push((next, kids, 0));
                }
                Color::Black => {}
            }
        }
    }
    None
}

/// Checks that recovery preserved durability: for each object, the
/// recovered version must lie on a chain of non-aborted writes rooted in
/// the initial state, and every commit acknowledged before the crash
/// line must be among (or equal to) its ancestors. In-doubt writes may
/// appear on the path — a commit the server completed just before the
/// crash is exactly the in-doubt case.
pub fn check_recovery(
    txns: &[TxnRecord],
    initial: &HashMap<Oid, Version>,
    recovered: &HashMap<Oid, Version>,
) -> Result<(), String> {
    let writes = index_writes(txns)?;
    // Required: stamps from commits acknowledged before the crash line.
    let mut required: HashMap<Oid, Vec<Stamp>> = HashMap::new();
    for t in txns {
        if t.outcome == Outcome::Committed && t.pre_crash {
            for op in &t.ops {
                if let Some(stamp) = op.wrote {
                    required.entry(op.oid).or_default().push(stamp);
                }
            }
        }
    }

    for (&oid, &tip) in recovered {
        // Walk ancestors from the recovered tip down to the root.
        let mut on_path: HashSet<Stamp> = HashSet::new();
        let mut cur = tip;
        let oid_root = root(initial, oid);
        let mut hops = 0;
        while cur != oid_root {
            let stamp = match cur {
                Some(s) => s,
                None => {
                    return Err(format!(
                        "recovered {oid:?} reaches initial but its root is {oid_root:?}"
                    ));
                }
            };
            let &(w, woid) = writes.get(&stamp).ok_or_else(|| {
                format!("recovered {oid:?} holds unknown stamp {stamp:?} (corruption)")
            })?;
            if woid != oid {
                return Err(format!(
                    "recovered {oid:?} holds stamp {stamp:?} written to {woid:?} (misdirected)"
                ));
            }
            if txns[w].outcome == Outcome::Aborted {
                return Err(format!(
                    "recovered {oid:?} holds {stamp:?} from a never-committed txn {w}"
                ));
            }
            on_path.insert(stamp);
            // Parent: what the write's own read observed.
            cur = txns[w]
                .ops
                .iter()
                .find(|op| op.wrote == Some(stamp))
                .expect("indexed write exists")
                .observed;
            hops += 1;
            if hops > txns.len() * 4 {
                return Err(format!("recovered chain on {oid:?} does not terminate"));
            }
        }
        if let Some(need) = required.get(&oid) {
            for stamp in need {
                if !on_path.contains(stamp) {
                    return Err(format!(
                        "durability lost on {oid:?}: pre-crash commit {stamp:?} is not an \
                         ancestor of the recovered version {tip:?}"
                    ));
                }
            }
        }
    }
    // Every object with a durable commit must appear in the sweep.
    for oid in required.keys() {
        if !recovered.contains_key(oid) {
            return Err(format!("recovery sweep is missing {oid:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgs_core::PageId;

    fn oid(n: u16) -> Oid {
        Oid::new(PageId(0), n)
    }

    fn stamp(client: u16, counter: u64) -> Stamp {
        Stamp { client, counter }
    }

    fn txn(client: u16, outcome: Outcome, ops: Vec<(Oid, Version, Option<Stamp>)>) -> TxnRecord {
        TxnRecord {
            client,
            ops: ops
                .into_iter()
                .map(|(oid, observed, wrote)| crate::history::OpRecord {
                    oid,
                    observed,
                    wrote,
                })
                .collect(),
            outcome,
            pre_crash: outcome == Outcome::Committed,
        }
    }

    #[test]
    fn clean_rmw_chain_passes() {
        let a = stamp(0, 1);
        let b = stamp(1, 1);
        let h = vec![
            txn(0, Outcome::Committed, vec![(oid(1), None, Some(a))]),
            txn(1, Outcome::Committed, vec![(oid(1), Some(a), Some(b))]),
        ];
        let rep = check_history(&h, &HashMap::new()).unwrap();
        assert_eq!(rep.committed, 2);
        assert_eq!(rep.max_chain_depth, 2);
    }

    #[test]
    fn lost_update_is_a_fork() {
        let a = stamp(0, 1);
        let b = stamp(1, 1);
        let h = vec![
            txn(0, Outcome::Committed, vec![(oid(1), None, Some(a))]),
            txn(1, Outcome::Committed, vec![(oid(1), None, Some(b))]),
        ];
        let err = check_history(&h, &HashMap::new()).unwrap_err();
        assert!(err.contains("lost update"), "{err}");
    }

    #[test]
    fn reading_an_aborted_write_is_g1a() {
        let a = stamp(0, 1);
        let h = vec![
            txn(0, Outcome::Aborted, vec![(oid(1), None, Some(a))]),
            txn(1, Outcome::Committed, vec![(oid(1), Some(a), None)]),
        ];
        let err = check_history(&h, &HashMap::new()).unwrap_err();
        assert!(err.contains("G1a"), "{err}");
    }

    #[test]
    fn write_skew_is_a_cycle() {
        // T0 reads y's initial state and writes x; T1 reads x's initial
        // state and writes y: each must precede the other.
        let x1 = stamp(0, 1);
        let y1 = stamp(1, 1);
        let h = vec![
            txn(
                0,
                Outcome::Committed,
                vec![(oid(2), None, None), (oid(1), None, Some(x1))],
            ),
            txn(
                1,
                Outcome::Committed,
                vec![(oid(1), None, None), (oid(2), None, Some(y1))],
            ),
        ];
        let err = check_history(&h, &HashMap::new()).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn observed_in_doubt_commits_are_promoted() {
        let a = stamp(0, 1);
        let h = vec![
            txn(0, Outcome::InDoubt, vec![(oid(1), None, Some(a))]),
            txn(1, Outcome::Committed, vec![(oid(1), Some(a), None)]),
        ];
        let rep = check_history(&h, &HashMap::new()).unwrap();
        assert_eq!(rep.promoted, 1);
        assert_eq!(rep.committed, 2);
    }

    #[test]
    fn unobserved_in_doubt_commits_are_invisible() {
        let a = stamp(0, 1);
        let h = vec![txn(0, Outcome::InDoubt, vec![(oid(1), None, Some(a))])];
        let rep = check_history(&h, &HashMap::new()).unwrap();
        assert_eq!(rep.invisible, 1);
        assert_eq!(rep.committed, 0);
    }

    #[test]
    fn recovery_must_keep_acknowledged_commits() {
        let a = stamp(0, 1);
        let h = vec![txn(0, Outcome::Committed, vec![(oid(1), None, Some(a))])];
        // Recovered back to the initial state: the durable commit is gone.
        let recovered: HashMap<Oid, Version> = [(oid(1), None)].into();
        let err = check_recovery(&h, &HashMap::new(), &recovered).unwrap_err();
        assert!(err.contains("durability lost"), "{err}");
        // Recovered at the commit: fine.
        let recovered: HashMap<Oid, Version> = [(oid(1), Some(a))].into();
        check_recovery(&h, &HashMap::new(), &recovered).unwrap();
    }

    #[test]
    fn recovery_may_keep_an_unobserved_in_doubt_tip() {
        let a = stamp(0, 1);
        let b = stamp(1, 1);
        let mut h = vec![
            txn(0, Outcome::Committed, vec![(oid(1), None, Some(a))]),
            txn(1, Outcome::InDoubt, vec![(oid(1), Some(a), Some(b))]),
        ];
        h[1].pre_crash = false;
        // The in-doubt commit landed: its ancestor (the durable commit)
        // is on the path, so this is a legal recovered state.
        let recovered: HashMap<Oid, Version> = [(oid(1), Some(b))].into();
        check_recovery(&h, &HashMap::new(), &recovered).unwrap();
        // But recovering *past* the durable commit to initial is not.
        let recovered: HashMap<Oid, Version> = [(oid(1), None)].into();
        assert!(check_recovery(&h, &HashMap::new(), &recovered).is_err());
    }
}
