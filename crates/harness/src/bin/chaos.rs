//! Seed-sweep driver for the chaos harness.
//!
//! ```text
//! fgs-chaos [--seeds N] [--start S] [--mode both|tcp|channel] [--txns T]
//! ```
//!
//! Runs `N` seeded chaos runs per transport mode starting at seed `S`.
//! Every failure prints one grep-able `FAIL FGS_SEED=<seed> mode=<mode>`
//! line carrying the full reproduce command
//! (`fgs-chaos --seeds 1 --start <seed> --mode <mode>`); the process
//! exits nonzero if any run fails.

use fgs_harness::run::{run_seed_with, Mode};
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

struct Args {
    seeds: u64,
    start: u64,
    modes: Vec<Mode>,
    txns: usize,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        start: 0,
        modes: vec![Mode::Channel, Mode::Tcp],
        txns: 30,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                args.seeds = val("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--start" => {
                args.start = val("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?;
            }
            "--txns" => {
                args.txns = val("--txns")?.parse().map_err(|e| format!("--txns: {e}"))?;
            }
            "--jobs" => {
                args.jobs = val("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--mode" => {
                args.modes = match val("--mode")?.as_str() {
                    "both" => vec![Mode::Channel, Mode::Tcp],
                    "tcp" => vec![Mode::Tcp],
                    "channel" => vec![Mode::Channel],
                    other => return Err(format!("unknown mode {other:?}")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: fgs-chaos [--seeds N] [--start S] \
                     [--mode both|tcp|channel] [--txns T] [--jobs J]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fgs-chaos: {e}");
            std::process::exit(2);
        }
    };

    let work: Vec<(u64, Mode)> = (args.start..args.start + args.seeds)
        .flat_map(|s| args.modes.iter().map(move |&m| (s, m)))
        .collect();
    let total = work.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    println!(
        "fgs-chaos: {} runs (seeds {}..{}, {} mode(s), {} txns/client, {} jobs)",
        total,
        args.start,
        args.start + args.seeds,
        args.modes.len(),
        args.txns,
        args.jobs
    );

    std::thread::scope(|scope| {
        for _ in 0..args.jobs.min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= total {
                    return;
                }
                let (seed, mode) = work[i];
                if let Err(e) = run_seed_with(seed, mode, args.txns) {
                    let mode_flag = match mode {
                        Mode::Channel => "channel",
                        Mode::Tcp => "tcp",
                    };
                    // One grep-able line per failure (mirrors the
                    // `FGS_SEED=<seed>` convention of the stress suite):
                    // seed, mode and reproduce command together, with the
                    // error's newlines flattened so nothing splits it.
                    let flat = e.replace('\n', " | ");
                    let msg = format!(
                        "FAIL FGS_SEED={seed} mode={mode_flag} \
                         [reproduce: fgs-chaos --seeds 1 --start {seed} \
                         --mode {mode_flag} --txns {}]: {flat}",
                        args.txns
                    );
                    eprintln!("{msg}");
                    failures.lock().expect("failures lock").push(msg);
                }
                let d = done.fetch_add(1, Ordering::SeqCst) + 1;
                if d % 50 == 0 || d == total {
                    println!("  {d}/{total} runs complete");
                    let _ = std::io::stdout().flush();
                }
            });
        }
    });

    let failures = failures.into_inner().expect("failures lock");
    if failures.is_empty() {
        println!("fgs-chaos: all {total} runs clean");
    } else {
        eprintln!("fgs-chaos: {} of {} runs FAILED:", failures.len(), total);
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
