//! Simulated time.
//!
//! Time is measured in seconds as an `f64`. All arithmetic performed on
//! [`SimTime`] values is deterministic, so simulation runs are exactly
//! reproducible for a given seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// `SimTime` is totally ordered; the event calendar additionally breaks ties
/// with a FIFO sequence number so that simultaneous events fire in schedule
/// order.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds. Panics if `secs` is negative or NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1_000.0)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1_000_000.0)
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Saturating difference: `self - other`, or zero if `other` is later.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> Duration {
        Duration::from_secs((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // SimTime is never NaN by construction, so partial_cmp always succeeds.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// A span of simulated time, in seconds. Always non-negative and finite.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Duration(f64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from seconds. Panics if negative or non-finite.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid Duration: {secs}");
        Duration(secs)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1_000.0)
    }

    /// This duration as fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Eq for Duration {}

impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("Duration is never NaN")
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics (in debug builds) if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {} - {}", self.0, rhs.0);
        Duration((self.0 - rhs.0).max(0.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(1500.0);
        assert_eq!(t.as_secs(), 1.5);
        let t2 = t + Duration::from_secs(0.5);
        assert_eq!(t2.as_secs(), 2.0);
        assert_eq!((t2 - t).as_secs(), 0.5);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1.0, 2.0, 3.0]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .sum();
        assert_eq!(total.as_secs(), 6.0);
    }
}
