//! A simulated CPU with the two-level scheduling discipline of the paper's
//! model: *system* requests (locks, message handling, I/O initiation) are
//! served FIFO with absolute priority, preempting *user* requests, which
//! share the processor equally (processor sharing).
//!
//! The CPU is a passive state machine. The simulation driver owns the event
//! calendar; after every state change it asks [`Cpu::completion_event`] for
//! the next completion time and schedules an event carrying the returned
//! generation number. Stale events (generation mismatch after an intervening
//! arrival) are ignored by [`Cpu::complete`].

use crate::time::{Duration, SimTime};
use std::collections::VecDeque;

/// Scheduling class of a CPU request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuClass {
    /// FIFO, absolute priority over user work (lock ops, messages, I/O setup).
    System,
    /// Processor-shared application work (object processing).
    User,
}

/// Completion residue below which a job is considered finished, in
/// instructions. Absorbs floating-point drift between the scheduled
/// completion time and the depletion arithmetic.
const EPS_INST: f64 = 1e-3;

#[derive(Debug, Clone, Copy)]
struct Job {
    token: u64,
    remaining: f64, // instructions
}

/// A simulated CPU.
#[derive(Debug)]
pub struct Cpu {
    inst_per_sec: f64,
    system: VecDeque<Job>,
    user: Vec<Job>,
    last: SimTime,
    generation: u64,
    busy: Duration,
}

impl Cpu {
    /// A CPU rated at `mips` million instructions per second.
    pub fn new(mips: f64) -> Self {
        assert!(mips > 0.0);
        Cpu {
            inst_per_sec: mips * 1e6,
            system: VecDeque::new(),
            user: Vec::new(),
            last: SimTime::ZERO,
            generation: 0,
            busy: Duration::ZERO,
        }
    }

    /// Submits a request of `inst` instructions. The caller's `token`
    /// identifies the request when it completes.
    pub fn submit(&mut self, now: SimTime, token: u64, inst: f64, class: CpuClass) {
        assert!(inst >= 0.0 && inst.is_finite(), "invalid work: {inst}");
        self.advance(now);
        let job = Job {
            token,
            remaining: inst,
        };
        match class {
            CpuClass::System => self.system.push_back(job),
            CpuClass::User => self.user.push(job),
        }
        self.generation += 1;
    }

    /// The `(time, generation)` at which the next request will complete, or
    /// `None` if the CPU is idle. The driver should schedule a completion
    /// event at that time carrying the generation.
    pub fn completion_event(&self, now: SimTime) -> Option<(SimTime, u64)> {
        debug_assert!(now >= self.last);
        let secs = if let Some(head) = self.system.front() {
            head.remaining / self.inst_per_sec
        } else if !self.user.is_empty() {
            let min = self
                .user
                .iter()
                .map(|j| j.remaining)
                .fold(f64::INFINITY, f64::min);
            min * self.user.len() as f64 / self.inst_per_sec
        } else {
            return None;
        };
        // Project from `last` (the state snapshot) rather than `now`; they are
        // equal whenever the driver has just mutated the CPU.
        Some((self.last + Duration::from_secs(secs), self.generation))
    }

    /// Handles a completion event scheduled for `(now, generation)`. Returns
    /// the tokens of all requests that finished, or `None` for a stale
    /// generation (state untouched — the caller must **not** re-arm, or
    /// duplicate events multiply).
    pub fn complete(&mut self, now: SimTime, generation: u64) -> Option<Vec<u64>> {
        if generation != self.generation {
            return None;
        }
        self.advance(now);
        let mut done = Vec::new();
        // Only the head of the system queue has been running.
        while let Some(head) = self.system.front() {
            if head.remaining <= EPS_INST {
                done.push(self.system.pop_front().expect("head exists").token);
                // Subsequent system jobs have not run yet; stop unless they
                // are zero-length.
            } else {
                break;
            }
        }
        if self.system.is_empty() {
            let mut i = 0;
            while i < self.user.len() {
                if self.user[i].remaining <= EPS_INST {
                    done.push(self.user.swap_remove(i).token);
                } else {
                    i += 1;
                }
            }
        }
        self.generation += 1;
        Some(done)
    }

    /// Total busy time accumulated so far (for utilization metrics). Call
    /// after the run's final event; includes time up to the last state
    /// change only.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Number of queued/running requests.
    pub fn load(&self) -> usize {
        self.system.len() + self.user.len()
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "CPU time moved backwards");
        let elapsed = (now - self.last).as_secs();
        self.last = now;
        if elapsed <= 0.0 {
            return;
        }
        let work = elapsed * self.inst_per_sec;
        if let Some(head) = self.system.front_mut() {
            // The completion event for the head is always scheduled, so we
            // can never be asked to advance past its finish time.
            debug_assert!(
                head.remaining >= work - 1.0,
                "advanced past system completion: {} < {}",
                head.remaining,
                work
            );
            head.remaining = (head.remaining - work).max(0.0);
            self.busy += Duration::from_secs(elapsed);
        } else if !self.user.is_empty() {
            let share = work / self.user.len() as f64;
            for job in &mut self.user {
                debug_assert!(job.remaining >= share - 1.0);
                job.remaining = (job.remaining - share).max(0.0);
            }
            self.busy += Duration::from_secs(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_job_completes_at_rated_speed() {
        // 1 MIPS CPU, 1e6 instructions => exactly one second.
        let mut cpu = Cpu::new(1.0);
        cpu.submit(SimTime::ZERO, 7, 1e6, CpuClass::User);
        let (t, generation) = cpu.completion_event(SimTime::ZERO).expect("busy");
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(cpu.complete(t, generation), Some(vec![7]));
        assert!(cpu.completion_event(t).is_none());
    }

    #[test]
    fn processor_sharing_halves_rate() {
        let mut cpu = Cpu::new(1.0);
        cpu.submit(SimTime::ZERO, 1, 1e6, CpuClass::User);
        cpu.submit(SimTime::ZERO, 2, 1e6, CpuClass::User);
        let (t, generation) = cpu.completion_event(SimTime::ZERO).expect("busy");
        // Two equal jobs sharing: both finish at 2 seconds.
        assert!((t.as_secs() - 2.0).abs() < 1e-9);
        let mut done = cpu.complete(t, generation).expect("current");
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn system_preempts_user() {
        let mut cpu = Cpu::new(1.0);
        cpu.submit(SimTime::ZERO, 1, 1e6, CpuClass::User);
        // At 0.5s a system job arrives; the user job pauses.
        let (t1, g1) = cpu.completion_event(SimTime::ZERO).expect("busy");
        assert!((t1.as_secs() - 1.0).abs() < 1e-9);
        cpu.submit(secs(0.5), 2, 0.25e6, CpuClass::System);
        assert_eq!(cpu.complete(t1, g1), None, "stale event ignored");
        let (t2, g2) = cpu.completion_event(secs(0.5)).expect("busy");
        assert!(
            (t2.as_secs() - 0.75).abs() < 1e-9,
            "system finishes at 0.75"
        );
        assert_eq!(cpu.complete(t2, g2), Some(vec![2]));
        let (t3, g3) = cpu.completion_event(t2).expect("busy");
        // User job had 0.5e6 left, resumes alone: finishes at 1.25s.
        assert!((t3.as_secs() - 1.25).abs() < 1e-9);
        assert_eq!(cpu.complete(t3, g3), Some(vec![1]));
    }

    #[test]
    fn system_jobs_are_fifo() {
        let mut cpu = Cpu::new(1.0);
        cpu.submit(SimTime::ZERO, 1, 1e6, CpuClass::System);
        cpu.submit(SimTime::ZERO, 2, 1e6, CpuClass::System);
        let (t, generation) = cpu.completion_event(SimTime::ZERO).expect("busy");
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(cpu.complete(t, generation), Some(vec![1]));
        let (t2, g2) = cpu.completion_event(t).expect("busy");
        assert!((t2.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(cpu.complete(t2, g2), Some(vec![2]));
    }

    #[test]
    fn unequal_ps_jobs_finish_in_order() {
        let mut cpu = Cpu::new(1.0);
        cpu.submit(SimTime::ZERO, 1, 1e6, CpuClass::User);
        cpu.submit(SimTime::ZERO, 2, 3e6, CpuClass::User);
        let (t, generation) = cpu.completion_event(SimTime::ZERO).expect("busy");
        // Short job finishes when it has received 1e6 at half speed: t=2.
        assert!((t.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(cpu.complete(t, generation), Some(vec![1]));
        let (t2, g2) = cpu.completion_event(t).expect("busy");
        // Long job has 2e6 left, runs alone: finishes at 4.
        assert!((t2.as_secs() - 4.0).abs() < 1e-9);
        assert_eq!(cpu.complete(t2, g2), Some(vec![2]));
    }

    #[test]
    fn zero_length_job_completes_immediately() {
        let mut cpu = Cpu::new(10.0);
        cpu.submit(secs(1.0), 5, 0.0, CpuClass::System);
        let (t, generation) = cpu.completion_event(secs(1.0)).expect("busy");
        assert_eq!(t, secs(1.0));
        assert_eq!(cpu.complete(t, generation), Some(vec![5]));
    }

    #[test]
    fn busy_time_tracks_utilization() {
        let mut cpu = Cpu::new(1.0);
        cpu.submit(SimTime::ZERO, 1, 1e6, CpuClass::User);
        let (t, generation) = cpu.completion_event(SimTime::ZERO).expect("busy");
        cpu.complete(t, generation);
        // Idle gap, then another job.
        cpu.submit(secs(3.0), 2, 1e6, CpuClass::User);
        let (t2, g2) = cpu.completion_event(secs(3.0)).expect("busy");
        cpu.complete(t2, g2);
        assert!((cpu.busy_time().as_secs() - 2.0).abs() < 1e-9);
    }
}
