//! Single-server FIFO queues, used for the server disks and the network.
//!
//! The paper models each disk as a FIFO queue with uniformly distributed
//! access times, and the network as a single FIFO server whose service time
//! is the on-the-wire time of the message (protocol CPU costs are charged at
//! the endpoints' CPUs).

use crate::time::{Duration, SimTime};

/// A work-conserving single-server FIFO queue.
///
/// Because service times are known at submission and the discipline is FIFO,
/// a request's completion time is determined immediately: requests are never
/// reordered or cancelled, so no generation counter is needed. The driver
/// schedules a completion event at the returned time.
#[derive(Debug, Default)]
pub struct FifoServer {
    busy_until: SimTime,
    busy: Duration,
    served: u64,
}

impl FifoServer {
    /// An idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request requiring `service` time, returning the simulated
    /// time at which it completes.
    pub fn submit(&mut self, now: SimTime, service: Duration) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + service;
        self.busy_until = done;
        self.busy += service;
        self.served += 1;
        done
    }

    /// Total time spent serving requests (for utilization metrics).
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Number of requests served (including queued-but-unfinished ones).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The time at which the server drains, given no further arrivals.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn dur(s: f64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoServer::new();
        assert_eq!(s.submit(secs(1.0), dur(0.5)), secs(1.5));
    }

    #[test]
    fn requests_queue_fifo() {
        let mut s = FifoServer::new();
        let a = s.submit(secs(0.0), dur(1.0));
        let b = s.submit(secs(0.0), dur(1.0));
        let c = s.submit(secs(0.5), dur(1.0));
        assert_eq!(a, secs(1.0));
        assert_eq!(b, secs(2.0));
        assert_eq!(c, secs(3.0));
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let mut s = FifoServer::new();
        s.submit(secs(0.0), dur(1.0));
        s.submit(secs(5.0), dur(2.0));
        assert_eq!(s.busy_time(), dur(3.0));
        assert_eq!(s.busy_until(), secs(7.0));
    }

    #[test]
    fn zero_service_is_instant() {
        let mut s = FifoServer::new();
        assert_eq!(s.submit(secs(2.0), Duration::ZERO), secs(2.0));
    }
}
