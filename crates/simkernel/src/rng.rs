//! Deterministic pseudo-random number generation.
//!
//! The simulator needs bit-for-bit reproducible runs across platforms and
//! library versions, so it carries its own PCG-32 implementation (O'Neill,
//! "PCG: A Family of Simple Fast Space-Efficient Statistically Good
//! Algorithms for Random Number Generation") rather than depending on a
//! version-sensitive external generator.

/// A PCG-32 (XSH-RR variant) pseudo-random number generator.
///
/// Each model component (workload generator, disks, ...) gets its own stream
/// via [`Pcg32::new`]'s `stream` argument so that changing the consumption
/// pattern of one component does not perturb the others.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream selector.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// The next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// A uniform value in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random bits scaled into [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's nearly-divisionless method with a rejection step, so the
    /// result is exactly uniform.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let lo = m as u32;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially distributed value with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// `k` distinct indices sampled uniformly from `[0, n)`, in random order.
    ///
    /// Implemented as a partial Fisher–Yates over an index vector; intended
    /// for `k` close to `n` (e.g. choosing pages without replacement from a
    /// client's hot range).
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<u32> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u32) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_is_stable() {
        // Golden values pin the generator across refactorings.
        let mut rng = Pcg32::new(42, 54);
        let got: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut rng2 = Pcg32::new(42, 54);
        let again: Vec<u32> = (0..4).map(|_| rng2.next_u32()).collect();
        assert_eq!(got, again, "same seed must give same sequence");
        let mut other = Pcg32::new(42, 55);
        assert_ne!(got[0], other.next_u32(), "streams must differ");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(7, 1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg32::new(123, 0);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expect = n / 10;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = Pcg32::new(5, 5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match rng.range_inclusive(3, 5) {
                3 => seen_lo = true,
                5 => seen_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = Pcg32::new(9, 2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean} too far from 2.0");
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = Pcg32::new(11, 3);
        let sample = rng.sample_without_replacement(50, 30);
        assert_eq!(sample.len(), 30);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::new(13, 4);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_probability() {
        let mut rng = Pcg32::new(17, 6);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
