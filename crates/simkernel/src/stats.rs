//! Output statistics: running tallies, time-weighted averages, and
//! batch-means confidence intervals.
//!
//! The paper reports 90% confidence intervals on response times computed
//! with the method of batch means; [`BatchMeans`] reproduces that.

use crate::time::SimTime;

/// A running tally of observations (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A time-weighted average of a piecewise-constant signal, e.g. queue length.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    area: f64,
}

impl TimeWeighted {
    /// Begins observing at `start` with initial value `v0`.
    pub fn new(start: SimTime, v0: f64) -> Self {
        TimeWeighted {
            start,
            last_t: start,
            last_v: v0,
            area: 0.0,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    pub fn update(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t);
        self.area += (t - self.last_t).as_secs() * self.last_v;
        self.last_t = t;
        self.last_v = v;
    }

    /// The time average over `[start, t]`.
    pub fn mean(&self, t: SimTime) -> f64 {
        let span = (t - self.start).as_secs();
        if span <= 0.0 {
            return self.last_v;
        }
        (self.area + (t - self.last_t).as_secs() * self.last_v) / span
    }
}

/// Two-sided 90% Student-t critical values, indexed by degrees of freedom
/// (1-based up to 30); beyond 30, the normal approximation 1.645 is used.
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// A 90% confidence interval computed with the method of batch means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Confidence {
    /// Point estimate (mean of the batch means).
    pub mean: f64,
    /// CI half-width; the interval is `mean ± half_width`.
    pub half_width: f64,
}

impl Confidence {
    /// Half-width as a fraction of the mean (the paper checks this is within
    /// a few percent). Returns infinity for a zero mean.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Batch-means estimator: the run (after warm-up) is divided into fixed
/// batches; each batch contributes one observation, and the batch means are
/// treated as approximately independent.
#[derive(Debug, Clone, Default)]
pub struct BatchMeans {
    batches: Vec<f64>,
}

impl BatchMeans {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one batch mean.
    pub fn record_batch(&mut self, value: f64) {
        self.batches.push(value);
    }

    /// Number of batches recorded.
    pub fn batches(&self) -> usize {
        self.batches.len()
    }

    /// The 90% confidence interval over the recorded batches, or `None` with
    /// fewer than two batches.
    pub fn confidence(&self) -> Option<Confidence> {
        let n = self.batches.len();
        if n < 2 {
            return None;
        }
        let mut tally = Tally::new();
        for &b in &self.batches {
            tally.record(b);
        }
        let df = n - 1;
        let t = if df <= 30 { T90[df - 1] } else { 1.645 };
        Some(Confidence {
            mean: tally.mean(),
            half_width: t * tally.std_dev() / (n as f64).sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn tally_empty_is_zero() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(1.0), 10.0); // 0 for [0,1)
        tw.update(SimTime::from_secs(3.0), 0.0); // 10 for [1,3)
        let mean = tw.mean(SimTime::from_secs(4.0)); // 0 for [3,4)
        assert!((mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn batch_means_exact_case() {
        let mut bm = BatchMeans::new();
        for v in [10.0, 12.0, 11.0, 9.0, 13.0] {
            bm.record_batch(v);
        }
        let ci = bm.confidence().expect("5 batches");
        assert!((ci.mean - 11.0).abs() < 1e-12);
        // s = sqrt(2.5), hw = 2.132 * s / sqrt(5)
        let expect = 2.132 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((ci.half_width - expect).abs() < 1e-9);
        assert!(ci.relative() > 0.0);
    }

    #[test]
    fn batch_means_needs_two() {
        let mut bm = BatchMeans::new();
        assert!(bm.confidence().is_none());
        bm.record_batch(1.0);
        assert!(bm.confidence().is_none());
        bm.record_batch(1.0);
        let ci = bm.confidence().expect("two batches");
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn confidence_relative_of_zero_mean() {
        let c = Confidence {
            mean: 0.0,
            half_width: 1.0,
        };
        assert!(c.relative().is_infinite());
    }
}
