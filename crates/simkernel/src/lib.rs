//! # fgs-simkernel
//!
//! A small discrete-event simulation kernel, built from scratch as the
//! substrate for reproducing the queueing model of Carey, Franklin &
//! Zaharioudakis, *"Fine-Grained Sharing in a Page Server OODBMS"*
//! (SIGMOD 1994). It plays the role that the DeNet simulation language
//! played for the original study.
//!
//! The kernel provides:
//!
//! * [`Calendar`] — a time-ordered event queue with FIFO tie-breaking that
//!   owns the simulation clock;
//! * [`Cpu`] — a processor with the paper's two-level discipline: FIFO
//!   system requests preempt processor-shared user requests;
//! * [`FifoServer`] — single-server FIFO queues for disks and the network;
//! * [`Pcg32`] — a deterministic random number generator with independent
//!   streams, so experiments are exactly reproducible;
//! * statistics ([`Tally`], [`TimeWeighted`], [`BatchMeans`]) matching the
//!   paper's batch-means 90% confidence intervals.
//!
//! The kernel is model-agnostic: the OODBMS client/server model lives in
//! the `fgs-sim` crate and drives these resources through the calendar.
//!
//! ## Example
//!
//! ```
//! use fgs_simkernel::{Calendar, Cpu, CpuClass, SimTime};
//!
//! // One CPU, one event type: "cpu finished something".
//! let mut cal: Calendar<u64> = Calendar::new();
//! let mut cpu = Cpu::new(15.0); // 15 MIPS, as the paper's clients
//! cpu.submit(cal.now(), 1, 30_000.0, CpuClass::User);
//! let (t, generation) = cpu.completion_event(cal.now()).unwrap();
//! cal.schedule(t, generation);
//! let (now, generation) = cal.pop().unwrap();
//! assert_eq!(cpu.complete(now, generation), Some(vec![1]));
//! assert_eq!(now, SimTime::from_secs(0.002)); // 30k instrs at 15 MIPS
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod calendar;
mod cpu;
mod fifo;
mod rng;
mod stats;
mod time;

pub use calendar::{Calendar, EventId};
pub use cpu::{Cpu, CpuClass};
pub use fifo::FifoServer;
pub use rng::Pcg32;
pub use stats::{BatchMeans, Confidence, Tally, TimeWeighted};
pub use time::{Duration, SimTime};
