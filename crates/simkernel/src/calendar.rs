//! The event calendar: a time-ordered queue of future events.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle for a scheduled event, usable to ignore stale completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by schedule order (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// The calendar owns the simulation clock: [`Calendar::pop`] advances `now`
/// to the fired event's timestamp. Scheduling an event in the past panics,
/// which catches causality bugs early.
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at `time`. Panics if `time` is in the past.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduling into the past: {} < {}",
            time,
            self.now
        );
        let id = EventId(self.seq);
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        id
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the calendar is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3.0), "c");
        cal.schedule(SimTime::from_secs(1.0), "a");
        cal.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5.0), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(2.0), 1);
        cal.schedule(SimTime::from_secs(1.0), 2);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(cal.len(), 2);
        cal.pop();
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2.0)));
    }
}
