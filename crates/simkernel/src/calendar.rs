//! The event calendar: a time-ordered queue of future events.
//!
//! Implemented as a **calendar queue** (R. Brown, CACM 1988): a bucketed
//! timing wheel whose bucket width adapts to the observed inter-event
//! gap, giving O(1) amortized schedule/pop on the simulator's hot loop
//! (the `BinaryHeap` it replaced paid `O(log n)` comparisons per
//! operation). Entries live in a slab with an embedded free list, so
//! steady-state scheduling performs **zero allocations**: bucket vectors,
//! slab slots and the overflow heap all recycle their storage.
//!
//! Structure:
//!
//! * **Slab** — every pending event occupies one reusable slot holding
//!   `(time, seq, event)`; the sequence number doubles as the [`EventId`]
//!   and as the FIFO tie-break for simultaneous events.
//! * **Wheel** — an array of buckets (a power of two); an event at time
//!   `t` lives in bucket `floor(t / width) % nbuckets`. The wheel covers
//!   `nbuckets` consecutive *days* (width-sized intervals) from the
//!   current clock; [`Calendar::pop`] scans forward from the last-popped
//!   day, which costs O(1) amortized when the width tracks the average
//!   event gap.
//! * **Overflow heap** — events beyond the wheel's horizon wait in a
//!   min-heap and migrate into the wheel as the clock approaches them.
//! * **Resizing** — the wheel doubles when occupancy exceeds two events
//!   per bucket and halves when it falls below a quarter, recomputing the
//!   bucket width from an exponential moving average of inter-pop gaps;
//!   it also rebuilds in place when the width drifts an order of
//!   magnitude away from that average (constant-population steady states
//!   never cross the occupancy thresholds).
//!
//! Semantics are identical to the heap implementation it replaced
//! (verified by a randomized differential test): strict `(time, FIFO)`
//! ordering, the clock advances on `pop`, and scheduling into the past
//! panics.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle for a scheduled event, usable to ignore stale completions
/// or to [`Calendar::cancel`] an event that has not fired yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Smallest number of buckets the wheel shrinks down to.
const MIN_BUCKETS: usize = 16;
/// Narrowest bucket width, in seconds (guards the day arithmetic against
/// degenerate all-simultaneous workloads driving the width to zero).
const MIN_WIDTH: f64 = 1e-9;

/// One slab slot. `event` is `None` while the slot sits on the free list.
struct Slot<E> {
    time: SimTime,
    seq: u64,
    /// The day `place` filed this entry under, cached so scans compare
    /// integers instead of re-dividing timestamps. Every resize re-places
    /// all live entries, so the cache always reflects the current width.
    day: u64,
    event: Option<E>,
}

/// Where `locate_min` found the earliest pending event.
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// In wheel bucket `bucket` at position `pos` (slab slot `slot`,
    /// firing on day `day`).
    Bucket {
        day: u64,
        bucket: usize,
        pos: usize,
        slot: u32,
    },
    /// At the top of the overflow heap.
    Overflow,
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// The calendar owns the simulation clock: [`Calendar::pop`] advances `now`
/// to the fired event's timestamp. Scheduling an event in the past panics,
/// which catches causality bugs early.
pub struct Calendar<E> {
    slab: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Wheel buckets of slab indices; `buckets.len()` is a power of two.
    buckets: Vec<Vec<u32>>,
    /// Bucket width in seconds.
    width: f64,
    /// Day (width-sized interval index) the forward scan resumes from.
    /// Invariant: no pending wheel event fires on an earlier day.
    cur_day: u64,
    /// Far-future events, min-ordered by `(time bits, seq)`. Every
    /// overflow event fires on day ≥ `day(now) + nbuckets`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Memoized location of the earliest event (peek/pop share one scan).
    cached_min: Option<Loc>,
    /// Exponential moving average of inter-pop gaps, in seconds; the
    /// bucket width is re-derived from it at every resize.
    gap_ema: f64,
    now: SimTime,
    seq: u64,
    len: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar with the clock at time zero.
    pub fn new() -> Self {
        Calendar {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 2e-3,
            cur_day: 0,
            overflow: BinaryHeap::new(),
            cached_min: None,
            gap_ema: 1e-3,
            now: SimTime::ZERO,
            seq: 0,
            len: 0,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The day (bucket-width interval index) containing `t`.
    #[inline]
    fn day_of(&self, t: SimTime) -> u64 {
        // The cast saturates for enormous quotients, which stays correct:
        // saturated days simply never migrate out of the overflow heap
        // until a resize recomputes a saner width.
        (t.as_secs() / self.width) as u64
    }

    /// First day past the wheel's coverage; events on or after it
    /// overflow. Anchored at `now` (not the scan position), so the
    /// coverage invariant survives scan rewinds by earlier arrivals.
    #[inline]
    fn horizon(&self) -> u64 {
        self.day_of(self.now)
            .saturating_add(self.buckets.len() as u64)
    }

    /// Schedules `event` to fire at `time`. Panics if `time` is in the past.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduling into the past: {} < {}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slab[i as usize];
                s.time = time;
                s.seq = seq;
                s.event = Some(event);
                i
            }
            None => {
                self.slab.push(Slot {
                    time,
                    seq,
                    day: 0,
                    event: Some(event),
                });
                (self.slab.len() - 1) as u32
            }
        };
        self.len += 1;
        // A strictly-earlier arrival supersedes the memoized minimum
        // (equal times lose the FIFO tie-break to the cached event).
        if let Some(loc) = self.cached_min {
            if time < self.loc_time(loc) {
                self.cached_min = None;
            }
        }
        self.place(slot);
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        EventId(seq)
    }

    /// Files slab entry `slot` into its wheel bucket or the overflow heap.
    fn place(&mut self, slot: u32) {
        let s = &self.slab[slot as usize];
        let (time, seq) = (s.time, s.seq);
        let day = self.day_of(time);
        self.slab[slot as usize].day = day;
        if day >= self.horizon() {
            self.overflow
                .push(Reverse((time.as_secs().to_bits(), seq, slot)));
        } else {
            // The scan never runs ahead of the earliest pending event, so
            // an arrival on an earlier day rewinds it.
            if day < self.cur_day {
                self.cur_day = day;
            }
            let b = (day & (self.buckets.len() as u64 - 1)) as usize;
            self.buckets[b].push(slot);
        }
    }

    /// Pulls every overflow event the wheel now covers into its bucket.
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(&Reverse((_, _, slot))) = self.overflow.peek() {
            if self.slab[slot as usize].day >= horizon {
                break;
            }
            let Reverse((_, _, slot)) = self.overflow.pop().expect("peeked");
            self.place(slot);
        }
    }

    /// The `(time, seq)` of the event at `loc`.
    fn loc_time(&self, loc: Loc) -> SimTime {
        match loc {
            Loc::Bucket { slot, .. } => self.slab[slot as usize].time,
            Loc::Overflow => {
                let &Reverse((bits, _, _)) = self.overflow.peek().expect("overflow min cached");
                SimTime::from_secs(f64::from_bits(bits))
            }
        }
    }

    /// Locates (and memoizes) the earliest pending event.
    fn locate_min(&mut self) -> Option<Loc> {
        if self.len == 0 {
            return None;
        }
        if let Some(loc) = self.cached_min {
            return Some(loc);
        }
        self.migrate_overflow();
        let wheel_len = self.len - self.overflow.len();
        let loc = if wheel_len == 0 {
            Loc::Overflow
        } else {
            self.scan_wheel().unwrap_or_else(|| {
                // Defensive fallback (Brown's "direct search"): a full
                // round found nothing, so locate the minimum by scanning
                // the slab and resume from its day. Unreachable while the
                // coverage invariant holds.
                let (mut best, mut best_slot) = (None::<(SimTime, u64)>, 0u32);
                for (i, s) in self.slab.iter().enumerate() {
                    if s.event.is_some() && best.map_or(true, |b| (s.time, s.seq) < b) {
                        best = Some((s.time, s.seq));
                        best_slot = i as u32;
                    }
                }
                let day = self.slab[best_slot as usize].day;
                self.cur_day = day;
                let b = (day & (self.buckets.len() as u64 - 1)) as usize;
                let pos = self.buckets[b]
                    .iter()
                    .position(|&s| s == best_slot)
                    .expect("minimum entry filed in its bucket");
                Loc::Bucket {
                    day,
                    bucket: b,
                    pos,
                    slot: best_slot,
                }
            })
        };
        self.cached_min = Some(loc);
        Some(loc)
    }

    /// One round of the wheel from `cur_day`: the first day with a
    /// pending event holds the wheel minimum (earliest `(time, seq)`).
    fn scan_wheel(&mut self) -> Option<Loc> {
        let n = self.buckets.len() as u64;
        for step in 0..n {
            let day = self.cur_day + step;
            let b = (day & (n - 1)) as usize;
            let mut best: Option<(SimTime, u64, usize, u32)> = None;
            for (pos, &slot) in self.buckets[b].iter().enumerate() {
                let s = &self.slab[slot as usize];
                // The bucket mixes rounds; only entries of this day count.
                if s.day == day && best.map_or(true, |(t, q, _, _)| (s.time, s.seq) < (t, q)) {
                    best = Some((s.time, s.seq, pos, slot));
                }
            }
            if let Some((_, _, pos, slot)) = best {
                self.cur_day = day;
                return Some(Loc::Bucket {
                    day,
                    bucket: b,
                    pos,
                    slot,
                });
            }
        }
        None
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the calendar is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let loc = self.locate_min()?;
        self.cached_min = None;
        let slot = match loc {
            Loc::Bucket {
                day, bucket, pos, ..
            } => {
                self.cur_day = day;
                self.buckets[bucket].swap_remove(pos)
            }
            Loc::Overflow => {
                let Reverse((_, _, slot)) = self.overflow.pop().expect("overflow min cached");
                // Jump the scan straight to the fired day: every earlier
                // day is empty (the wheel was empty and this was the
                // overflow minimum).
                self.cur_day = self.slab[slot as usize].day;
                slot
            }
        };
        let s = &mut self.slab[slot as usize];
        let time = s.time;
        let event = s.event.take().expect("located entry is live");
        self.free.push(slot);
        self.len -= 1;
        let gap = (time.as_secs() - self.now.as_secs()).max(0.0);
        self.gap_ema = (0.875 * self.gap_ema + 0.125 * gap).max(MIN_WIDTH);
        self.now = time;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            let n = self.buckets.len() / 2;
            self.resize(n);
        } else {
            // Width drift: a hold-style steady state (pop one, schedule
            // one) never crosses the occupancy thresholds, so the width
            // must chase the observed gap directly or every pop degrades
            // to a linear same-day bucket scan. Rebuild when the width is
            // an order of magnitude off target; the wide hysteresis band
            // (rebuild sets width to the target itself) keeps the O(n)
            // rebuild rare under smoothly drifting gaps.
            let target = (2.0 * self.gap_ema).max(MIN_WIDTH);
            if self.width > 16.0 * target || self.width < target / 8.0 {
                self.resize(self.buckets.len());
            }
        }
        Some((time, event))
    }

    /// Cancels a pending event, returning it. Returns `None` for a stale
    /// id (already fired or cancelled) — the generation-guard idiom the
    /// drivers use for superseded completions also works here. O(n): the
    /// simulator's hot path never cancels, it ignores stale fires.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        let slot = self
            .slab
            .iter()
            .position(|s| s.seq == id.0 && s.event.is_some())? as u32;
        let s = &mut self.slab[slot as usize];
        let day = s.day;
        let event = s.event.take().expect("checked live");
        // The entry is wherever `place` filed it, which the moving
        // horizon can't reconstruct after the fact: try the overflow heap
        // first (rebuilding it without the entry), else its wheel bucket.
        let before = self.overflow.len();
        let drained: Vec<_> = std::mem::take(&mut self.overflow)
            .into_vec()
            .into_iter()
            .filter(|&Reverse((_, _, s))| s != slot)
            .collect();
        self.overflow = drained.into();
        if self.overflow.len() == before {
            self.remove_from_bucket(day, slot);
        }
        self.free.push(slot);
        self.len -= 1;
        self.cached_min = None;
        Some(event)
    }

    fn remove_from_bucket(&mut self, day: u64, slot: u32) {
        let b = (day & (self.buckets.len() as u64 - 1)) as usize;
        let pos = self.buckets[b]
            .iter()
            .position(|&s| s == slot)
            .expect("live entry filed in its bucket");
        self.buckets[b].swap_remove(pos);
    }

    /// Rebuilds the wheel with `nbuckets` buckets and a width re-derived
    /// from the observed inter-pop gap.
    fn resize(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        // Aim for ~one event per bucket-day: twice the mean gap keeps a
        // bucket's same-day scan short without fragmenting bursts.
        self.width = (2.0 * self.gap_ema).max(MIN_WIDTH);
        for b in &mut self.buckets {
            b.clear();
        }
        self.buckets.resize_with(nbuckets, Vec::new);
        self.overflow.clear();
        self.cached_min = None;
        self.cur_day = self.day_of(self.now);
        for slot in 0..self.slab.len() as u32 {
            if self.slab[slot as usize].event.is_some() {
                self.place(slot);
            }
        }
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.locate_min().map(|loc| self.loc_time(loc))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3.0), "c");
        cal.schedule(SimTime::from_secs(1.0), "a");
        cal.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5.0), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(2.0), 1);
        cal.schedule(SimTime::from_secs(1.0), 2);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(cal.len(), 2);
        cal.pop();
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn earlier_arrival_after_peek_fires_first() {
        // Peek advances the scan; a later `schedule` of an earlier event
        // must rewind it.
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(10.0), "late");
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(10.0)));
        cal.schedule(SimTime::from_secs(0.5), "early");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("early"));
        assert_eq!(cal.pop().map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut cal = Calendar::new();
        // Way past the initial 16-bucket horizon.
        cal.schedule(SimTime::from_secs(1_000.0), "far");
        cal.schedule(SimTime::from_secs(0.001), "near");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("near"));
        assert_eq!(cal.pop().map(|(_, e)| e), Some("far"));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_removes_pending_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_secs(1.0), "a");
        let b = cal.schedule(SimTime::from_secs(2.0), "b");
        let far = cal.schedule(SimTime::from_secs(500.0), "far");
        assert_eq!(cal.cancel(b), Some("b"));
        assert_eq!(cal.cancel(b), None, "stale id");
        assert_eq!(cal.cancel(far), Some("far"), "overflow cancel");
        assert_eq!(cal.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(cal.cancel(a), None, "fired id is stale");
        assert!(cal.is_empty());
    }

    #[test]
    fn grows_and_shrinks_through_resize_boundaries() {
        let mut cal = Calendar::new();
        // Push well past several grow thresholds, then drain fully
        // (crossing shrink thresholds) and verify global ordering.
        let mut times = Vec::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (x >> 11) as f64 / (1u64 << 53) as f64 * 50.0;
            times.push((SimTime::from_secs(t), i));
        }
        for &(t, i) in &times {
            cal.schedule(t, i);
        }
        assert_eq!(cal.len(), times.len());
        let mut popped = Vec::new();
        while let Some((t, i)) = cal.pop() {
            popped.push((t, i));
        }
        let mut expect = times.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(popped, expect);
    }

    #[test]
    fn width_tracks_observed_gap_in_steady_state() {
        // Constant population, microsecond gaps: far denser than the
        // initial 2 ms width. The drift trigger must pull the width down
        // even though `len` never crosses an occupancy threshold.
        let mut cal = Calendar::new();
        for i in 0..512u64 {
            cal.schedule(SimTime::from_secs(i as f64 * 1e-6), i);
        }
        for _ in 0..2_000 {
            let (t, e) = cal.pop().expect("hold model never drains");
            cal.schedule(t + crate::time::Duration::from_secs(512e-6), e);
        }
        assert!(
            cal.width < 1e-4,
            "width {} did not adapt to ~1 µs gaps",
            cal.width
        );
    }

    #[test]
    fn steady_state_reuses_slab_slots() {
        // Hold model: pop one, schedule one. The slab must not grow past
        // the initial population.
        let mut cal = Calendar::new();
        for i in 0..64u64 {
            cal.schedule(SimTime::from_secs(i as f64 * 0.01), i);
        }
        let cap = cal.slab.len();
        for _ in 0..10_000 {
            let (t, e) = cal.pop().expect("hold model never drains");
            cal.schedule(t + crate::time::Duration::from_secs(0.64), e);
        }
        assert_eq!(cal.slab.len(), cap, "steady state must not allocate slots");
    }
}
