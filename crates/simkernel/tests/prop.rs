//! Property tests for the simulation kernel's resources: work
//! conservation, FIFO discipline, and clock monotonicity under random
//! schedules.

use fgs_simkernel::{Calendar, Cpu, CpuClass, Duration, FifoServer, SimTime};
use proptest::prelude::*;

/// Random (arrival offset ms, instructions, is_system) job descriptions.
fn jobs() -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    prop::collection::vec((0u32..2_000, 1u32..2_000_000, any::<bool>()), 1..40)
}

proptest! {
    /// Every submitted CPU job completes exactly once; busy time equals
    /// total work divided by speed (work conservation: the CPU is never
    /// idle while jobs are queued, never busy while empty); system jobs
    /// finish in FIFO order.
    #[test]
    fn cpu_conserves_work(descr in jobs()) {
        let mips = 10.0;
        let mut cpu = Cpu::new(mips);
        let mut cal: Calendar<u64> = Calendar::new();
        // Sort arrivals; submit via arrival events encoded as tokens with
        // the high bit set.
        let mut arrivals = descr.clone();
        arrivals.sort_by_key(|a| a.0);
        for (i, &(at_ms, _, _)) in arrivals.iter().enumerate() {
            cal.schedule(SimTime::from_millis(f64::from(at_ms)), (1 << 40) | i as u64);
        }
        let mut done: Vec<u64> = Vec::new();
        let mut system_submitted: Vec<u64> = Vec::new();
        while let Some((now, ev)) = cal.pop() {
            if ev & (1 << 40) != 0 {
                let i = (ev & 0xFFFF_FFFF) as usize;
                let (_, inst, is_system) = arrivals[i];
                let class = if is_system { CpuClass::System } else { CpuClass::User };
                if is_system {
                    system_submitted.push(i as u64);
                }
                cpu.submit(now, i as u64, f64::from(inst), class);
                if let Some((t, generation)) = cpu.completion_event(now) {
                    cal.schedule(t.max(now), generation << 41 | (1 << 39));
                }
            } else if ev & (1 << 39) != 0 {
                let generation = ev >> 41;
                if let Some(finished) = cpu.complete(now, generation) {
                    done.extend(finished);
                    if let Some((t, generation)) = cpu.completion_event(now) {
                        cal.schedule(t.max(now), generation << 41 | (1 << 39));
                    }
                }
            }
        }
        prop_assert_eq!(done.len(), arrivals.len(), "every job completes once");
        let total_inst: f64 = arrivals.iter().map(|a| f64::from(a.1)).sum();
        let busy = cpu.busy_time().as_secs();
        prop_assert!(
            (busy - total_inst / (mips * 1e6)).abs() < 1e-6,
            "work conservation: busy {} vs {}", busy, total_inst / (mips * 1e6)
        );
        // System jobs complete in submission order.
        let sys_done: Vec<u64> = done
            .iter()
            .copied()
            .filter(|t| system_submitted.contains(t))
            .collect();
        prop_assert_eq!(sys_done, system_submitted);
    }

    /// FIFO server: completions are ordered, spaced by at least the
    /// service times, and busy time is the sum of service demands.
    #[test]
    fn fifo_server_is_work_conserving(
        reqs in prop::collection::vec((0u32..5_000, 1u32..500), 1..50),
    ) {
        let mut reqs = reqs;
        reqs.sort_by_key(|r| r.0);
        let mut server = FifoServer::new();
        let mut last_done = SimTime::ZERO;
        let mut total = 0.0;
        for &(at_ms, service_ms) in &reqs {
            let now = SimTime::from_millis(f64::from(at_ms));
            let done = server.submit(now, Duration::from_millis(f64::from(service_ms)));
            prop_assert!(done >= last_done, "FIFO completions are ordered");
            prop_assert!(done >= now + Duration::from_millis(f64::from(service_ms)));
            last_done = done;
            total += f64::from(service_ms) / 1e3;
        }
        prop_assert!((server.busy_time().as_secs() - total).abs() < 1e-9);
        prop_assert_eq!(server.served(), reqs.len() as u64);
    }

    /// The calendar pops in global time order with FIFO tie-break, and
    /// its clock never goes backwards.
    #[test]
    fn calendar_orders_random_schedules(times in prop::collection::vec(0u32..10_000, 1..200)) {
        let mut cal: Calendar<usize> = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_millis(f64::from(t)), i);
        }
        let mut last = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        let mut count = 0;
        while let Some((now, i)) = cal.pop() {
            prop_assert!(now >= last);
            if now == last {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(i > prev, "FIFO among simultaneous events");
                }
            }
            last_seq_at_time = Some(i);
            last = now;
            count += 1;
            prop_assert_eq!(cal.now(), now);
        }
        prop_assert_eq!(count, times.len());
    }
}
