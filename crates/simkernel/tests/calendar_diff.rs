//! Differential and property tests for the calendar-queue event engine:
//! random interleavings of schedule / pop / cancel are replayed against a
//! reference binary-heap calendar (the implementation the queue
//! replaced), and every observable — pop order, timestamps, clock,
//! length, stale-id handling — must match exactly.

use fgs_simkernel::{Calendar, EventId, SimTime};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------
// Reference model: the original BinaryHeap calendar, extended with lazy
// cancellation so the differential covers `cancel` too.
// ---------------------------------------------------------------------

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-calendar-queue implementation, verbatim semantics: max-heap
/// inverted to a min-heap, FIFO tie-break on a schedule counter, clock
/// advanced on pop, past scheduling panics. Cancellation is lazy (a
/// tombstone list), which is observationally equivalent.
struct HeapCalendar<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: Vec<u64>,
    now: SimTime,
    seq: u64,
}

impl<E> HeapCalendar<E> {
    fn new() -> Self {
        HeapCalendar {
            heap: BinaryHeap::new(),
            cancelled: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    fn schedule(&mut self, time: SimTime, event: E) -> u64 {
        assert!(time >= self.now, "scheduling into the past");
        let id = self.seq;
        self.heap.push(HeapEntry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        id
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.pop()?;
            if let Some(i) = self.cancelled.iter().position(|&s| s == entry.seq) {
                self.cancelled.swap_remove(i);
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
    }

    fn cancel(&mut self, seq: u64) -> bool {
        let live = self.heap.iter().any(|e| e.seq == seq) && !self.cancelled.contains(&seq);
        if live {
            self.cancelled.push(seq);
        }
        live
    }

    fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }
}

// ---------------------------------------------------------------------
// Script interpreter: both implementations execute the same random
// operation sequence.
// ---------------------------------------------------------------------

/// One scripted operation. Times are microsecond offsets from `now` so
/// every schedule is legal; `Tie` reuses the exact previous timestamp to
/// stress FIFO ordering; `Cancel` indexes into the ids issued so far
/// (hitting both live and stale ones).
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + us`; large offsets land in the overflow heap.
    Schedule {
        us: u32,
    },
    /// Schedule at exactly the last scheduled timestamp (if still >= now).
    Tie,
    Pop,
    /// Cancel the (i % issued)-th id ever issued.
    Cancel {
        i: u16,
    },
}

/// The vendored proptest's `prop_oneof!` is homogeneous, so operations
/// are generated as raw `(kind, offset, index)` tuples and decoded:
/// kind 0-1 → near schedule, 2 → far schedule (overflow territory),
/// 3 → tie, 4-5 → pop, 6 → cancel.
fn decode(raw: &[(u8, u32, u16)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, us, i)| match kind % 7 {
            // Mostly sub-millisecond gaps (the simulator's regime), with
            // a tail of far-future events that exercise overflow and
            // bucket-resize boundaries.
            0 | 1 => Op::Schedule { us: us % 2_000 },
            2 => Op::Schedule {
                us: 100_000 + us % 50_000_000,
            },
            3 => Op::Tie,
            4 | 5 => Op::Pop,
            _ => Op::Cancel { i },
        })
        .collect()
}

fn ops() -> impl Strategy<Value = Vec<(u8, u32, u16)>> {
    prop::collection::vec((any::<u8>(), any::<u32>(), any::<u16>()), 1..400)
}

fn run_script(script: &[Op]) {
    let mut cq: Calendar<u64> = Calendar::new();
    let mut heap: HeapCalendar<u64> = HeapCalendar::new();
    let mut ids: Vec<(EventId, u64)> = Vec::new(); // (queue id, heap seq)
    let mut last_time: Option<SimTime> = None;
    let mut payload = 0u64;
    for op in script {
        match *op {
            Op::Schedule { us } => {
                let t = cq.now() + fgs_simkernel::Duration::from_secs(f64::from(us) * 1e-6);
                let a = cq.schedule(t, payload);
                let b = heap.schedule(t, payload);
                ids.push((a, b));
                last_time = Some(t);
                payload += 1;
            }
            Op::Tie => {
                if let Some(t) = last_time.filter(|&t| t >= cq.now()) {
                    let a = cq.schedule(t, payload);
                    let b = heap.schedule(t, payload);
                    ids.push((a, b));
                    payload += 1;
                }
            }
            Op::Pop => {
                let got = cq.pop();
                let want = heap.pop();
                assert_eq!(got, want, "pop diverged");
                assert_eq!(cq.now(), heap.now, "clock diverged");
            }
            Op::Cancel { i } => {
                if !ids.is_empty() {
                    let (a, b) = ids[i as usize % ids.len()];
                    let got = cq.cancel(a).is_some();
                    let want = heap.cancel(b);
                    assert_eq!(got, want, "cancel liveness diverged for {a:?}");
                }
            }
        }
        assert_eq!(cq.len(), heap.len(), "length diverged");
        assert_eq!(cq.is_empty(), heap.len() == 0);
    }
    // Drain both completely: residual order must match too.
    loop {
        let got = cq.pop();
        let want = heap.pop();
        assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    /// Randomized differential: the calendar queue and the reference heap
    /// agree on every observable for arbitrary schedule/tie/pop/cancel
    /// interleavings.
    #[test]
    fn calendar_queue_matches_heap(raw in ops()) {
        run_script(&decode(&raw));
    }
}

/// A long deterministic hold-model run (the simulator's steady state):
/// enough events to cross several grow boundaries on the way up and
/// shrink boundaries on the way down.
#[test]
fn hold_model_crosses_resize_boundaries() {
    let mut script = Vec::new();
    for i in 0..3_000u32 {
        script.push(Op::Schedule {
            us: (i * 37) % 5_000,
        });
        if i % 16 == 0 {
            script.push(Op::Schedule {
                us: 1_000_000 + i * 101,
            });
        }
    }
    for i in 0..3_000u32 {
        script.push(Op::Pop);
        if i % 3 == 0 {
            script.push(Op::Schedule {
                us: (i * 53) % 2_500,
            });
        }
        if i % 7 == 0 {
            script.push(Op::Cancel { i: i as u16 });
        }
    }
    run_script(&script);
}

/// Mass ties: thousands of events at identical timestamps interleaved
/// with pops must preserve global FIFO order.
#[test]
fn mass_ties_stay_fifo() {
    let mut script = Vec::new();
    for _ in 0..50 {
        script.push(Op::Schedule { us: 500 });
        for _ in 0..40 {
            script.push(Op::Tie);
        }
        for _ in 0..30 {
            script.push(Op::Pop);
        }
    }
    run_script(&script);
}

/// The schedule-in-the-past panic survives the reimplementation.
#[test]
#[should_panic(expected = "scheduling into the past")]
fn past_scheduling_still_panics() {
    let mut cal: Calendar<()> = Calendar::new();
    cal.schedule(SimTime::from_secs(5.0), ());
    cal.pop();
    cal.schedule(SimTime::from_secs(1.0), ());
}
