use fgs_core::Protocol;
use fgs_sim::{run_point, RunConfig, SystemConfig};
use fgs_workload::{Locality, WorkloadSpec};

#[test]
fn smoke_all_protocols_hotcold() {
    let sys = SystemConfig::default();
    let run = RunConfig {
        duration: 30.0,
        warmup: 5.0,
        batches: 5,
        seed: 42,
    };
    for p in Protocol::ALL {
        let m = run_point(p, WorkloadSpec::hotcold(Locality::Low, 0.1), &sys, &run);
        println!("{}", m.summary());
        assert!(m.commits > 0, "{p}: no commits");
        assert!(m.throughput > 0.0, "{p}");
        assert!(m.server_cpu_util <= 1.0 + 1e-9 && m.disk_util <= 1.0 + 1e-9);
    }
}
