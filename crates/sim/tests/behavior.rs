//! Behavioural tests of the simulator: determinism, metric sanity, and
//! the qualitative relationships the model must exhibit regardless of
//! parameter details.

use fgs_core::Protocol;
use fgs_sim::{normalize_to, run_point, sweep_probs, RunConfig, SystemConfig};
use fgs_workload::{Locality, WorkloadSpec};

fn quick() -> RunConfig {
    RunConfig {
        duration: 50.0,
        warmup: 10.0,
        batches: 4,
        seed: 77,
    }
}

#[test]
fn identical_seeds_give_identical_metrics() {
    let sys = SystemConfig::default();
    let a = run_point(
        Protocol::PsAa,
        WorkloadSpec::hotcold(Locality::Low, 0.1),
        &sys,
        &quick(),
    );
    let b = run_point(
        Protocol::PsAa,
        WorkloadSpec::hotcold(Locality::Low, 0.1),
        &sys,
        &quick(),
    );
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.msgs_per_commit, b.msgs_per_commit);
    assert_eq!(a.callbacks, b.callbacks);
}

#[test]
fn different_seeds_differ_but_agree_statistically() {
    let sys = SystemConfig::default();
    let mut run = quick();
    let a = run_point(
        Protocol::Ps,
        WorkloadSpec::hotcold(Locality::Low, 0.05),
        &sys,
        &run,
    );
    run.seed = 78;
    let b = run_point(
        Protocol::Ps,
        WorkloadSpec::hotcold(Locality::Low, 0.05),
        &sys,
        &run,
    );
    assert_ne!(a.commits, b.commits, "seeds perturb the run");
    let diff = (a.throughput - b.throughput).abs();
    assert!(
        diff < 0.35 * a.throughput.max(b.throughput),
        "seeds should not change the story: {} vs {}",
        a.throughput,
        b.throughput
    );
}

#[test]
fn utilizations_and_rates_are_sane() {
    let sys = SystemConfig::default();
    for protocol in Protocol::ALL {
        let m = run_point(
            protocol,
            WorkloadSpec::uniform(Locality::Low, 0.1),
            &sys,
            &quick(),
        );
        assert!(m.commits > 50, "{protocol}: too few commits");
        assert!(m.throughput > 0.0);
        for (name, v) in [
            ("server_cpu", m.server_cpu_util),
            ("client_cpu", m.client_cpu_util),
            ("disk", m.disk_util),
            ("net", m.net_util),
            ("server_hit", m.server_hit_rate),
            ("client_hit", m.client_hit_rate),
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "{protocol} {name}={v}");
        }
        assert!(m.msgs_per_commit > 0.0, "{protocol}: messages happen");
        assert!(
            m.response_ms > 0.0 && m.response_ms < 60_000.0,
            "{protocol}: response {}ms",
            m.response_ms
        );
    }
}

#[test]
fn read_only_workload_never_aborts_or_calls_back() {
    let sys = SystemConfig::default();
    for protocol in Protocol::ALL {
        let m = run_point(
            protocol,
            WorkloadSpec::hotcold(Locality::Low, 0.0),
            &sys,
            &quick(),
        );
        assert_eq!(m.aborts, 0, "{protocol}: no writes, no deadlocks");
        assert_eq!(m.callbacks, 0, "{protocol}: no writes, no callbacks");
    }
}

#[test]
fn private_workload_has_no_contention_for_any_protocol() {
    let sys = SystemConfig::default();
    for protocol in Protocol::ALL {
        let m = run_point(
            protocol,
            WorkloadSpec::private(Locality::High, 0.3),
            &sys,
            &quick(),
        );
        assert_eq!(m.aborts, 0, "{protocol}: PRIVATE is contention-free");
    }
}

#[test]
fn os_sends_most_messages_page_protocols_fewest() {
    let sys = SystemConfig::default();
    let run = quick();
    let spec = || WorkloadSpec::hotcold(Locality::High, 0.1);
    let os = run_point(Protocol::Os, spec(), &sys, &run);
    let ps = run_point(Protocol::Ps, spec(), &sys, &run);
    let oo = run_point(Protocol::PsOo, spec(), &sys, &run);
    assert!(
        os.msgs_per_commit > 2.0 * ps.msgs_per_commit,
        "OS per-object traffic dwarfs PS: {} vs {}",
        os.msgs_per_commit,
        ps.msgs_per_commit
    );
    assert!(
        oo.msgs_per_commit > ps.msgs_per_commit,
        "object-level lock requests cost messages"
    );
}

#[test]
fn psaa_locks_pages_when_alone_objects_under_contention() {
    let sys = SystemConfig::default();
    let run = quick();
    // PRIVATE: no contention — virtually all grants should be page-level.
    let private = run_point(
        Protocol::PsAa,
        WorkloadSpec::private(Locality::High, 0.2),
        &sys,
        &run,
    );
    assert!(
        private.page_grant_frac > 0.95,
        "PS-AA should page-lock under PRIVATE, got {}",
        private.page_grant_frac
    );
    // HICON: heavy sharing — a large share of object grants (and some
    // de-escalations) must appear.
    let hicon = run_point(
        Protocol::PsAa,
        WorkloadSpec::hicon(Locality::Low, 0.2),
        &sys,
        &run,
    );
    assert!(
        hicon.page_grant_frac < private.page_grant_frac,
        "contention must push PS-AA toward object locks"
    );
    assert!(
        hicon.deescalations > 0,
        "de-escalation engages under contention"
    );
}

#[test]
fn false_sharing_hurts_ps_but_not_psoo() {
    // Interleaved PRIVATE: object-disjoint, page-shared. PS must abort /
    // serialize; PS-OO sails through.
    let sys = SystemConfig::default();
    let run = quick();
    let ps = run_point(
        Protocol::Ps,
        WorkloadSpec::interleaved_private(0.2),
        &sys,
        &run,
    );
    let oo = run_point(
        Protocol::PsOo,
        WorkloadSpec::interleaved_private(0.2),
        &sys,
        &run,
    );
    assert!(
        oo.throughput > 1.5 * ps.throughput,
        "object callbacks dodge the ping-pong: {} vs {}",
        oo.throughput,
        ps.throughput
    );
}

#[test]
fn higher_write_probability_reduces_throughput() {
    let sys = SystemConfig::default();
    let run = quick();
    for protocol in [Protocol::Ps, Protocol::PsAa] {
        let lo = run_point(
            protocol,
            WorkloadSpec::hotcold(Locality::Low, 0.0),
            &sys,
            &run,
        );
        let hi = run_point(
            protocol,
            WorkloadSpec::hotcold(Locality::Low, 0.3),
            &sys,
            &run,
        );
        assert!(
            lo.throughput > hi.throughput,
            "{protocol}: writes cost work and contention"
        );
    }
}

#[test]
fn sweep_and_normalize_shapes() {
    let sys = SystemConfig::default();
    let run = quick();
    let fig = sweep_probs(
        "t",
        "test sweep",
        &[Protocol::Ps, Protocol::PsAa],
        &sys,
        &run,
        &[0.0, 0.1],
        |w| WorkloadSpec::hotcold(Locality::Low, w),
    );
    assert_eq!(fig.series.len(), 2);
    assert_eq!(fig.runs.len(), 4);
    assert!(fig.value(Protocol::Ps, 0.0).unwrap() > 0.0);
    let norm = normalize_to(&fig, Protocol::PsAa);
    for pt in &norm
        .series
        .iter()
        .find(|s| s.protocol == "PS-AA")
        .unwrap()
        .points
    {
        assert!((pt.1 - 1.0).abs() < 1e-9, "reference normalizes to 1.0");
    }
    let table = fig.to_table();
    assert!(table.contains("PS-AA"));
}

#[test]
fn redo_at_server_shifts_load_to_server() {
    let run = quick();
    let spec = || WorkloadSpec::hotcold(Locality::High, 0.2);
    let merge = run_point(Protocol::PsAa, spec(), &SystemConfig::default(), &run);
    let redo_sys = SystemConfig {
        redo_at_server: true,
        ..SystemConfig::default()
    };
    let redo = run_point(Protocol::PsAa, spec(), &redo_sys, &run);
    assert!(
        redo.server_cpu_util > merge.server_cpu_util,
        "redo-at-server burdens the server: {} vs {}",
        redo.server_cpu_util,
        merge.server_cpu_util
    );
}

#[test]
fn think_time_throttles_throughput() {
    let spec = || WorkloadSpec::hotcold(Locality::High, 0.0);
    let run = quick();
    let busy = run_point(Protocol::Ps, spec(), &SystemConfig::default(), &run);
    let thinking = SystemConfig {
        think_time: 1.0,
        ..SystemConfig::default()
    };
    let idle = run_point(Protocol::Ps, spec(), &thinking, &run);
    assert!(idle.throughput < busy.throughput);
    // With 10 clients thinking 1s between transactions, throughput is
    // bounded by 10/(1+resp) < 10 tps.
    assert!(idle.throughput < 10.0);
}
