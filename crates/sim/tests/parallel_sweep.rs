//! Determinism regression tests for the parallel sweep scheduler: the
//! same grid run sequentially and at 4 workers must produce bit-identical
//! metrics, figures included.

use fgs_core::Protocol;
use fgs_sim::{cell_seed, run_cells, sweep_probs_workers, RunConfig, SweepCell, SystemConfig};
use fgs_workload::{Locality, WorkloadSpec};

fn quick() -> RunConfig {
    RunConfig {
        duration: 40.0,
        warmup: 8.0,
        batches: 4,
        seed: 0xF65_1994,
    }
}

/// The satellite regression: one HOTCOLD sweep cell, sequential vs. the
/// parallel scheduler at 4 workers, asserting identical `Metrics`.
#[test]
fn hotcold_cell_identical_sequential_vs_parallel() {
    let sys = SystemConfig::default();
    let run = quick();
    let cells = vec![SweepCell {
        protocol: Protocol::PsAa,
        write_prob: 0.1,
        spec: WorkloadSpec::hotcold(Locality::Low, 0.1),
    }];
    let seq = run_cells(&cells, &sys, &run, 1);
    let par = run_cells(&cells, &sys, &run, 4);
    assert_eq!(seq, par, "single HOTCOLD cell must be scheduler-invariant");
    assert!(seq[0].commits > 0, "the cell actually simulated something");
}

/// A multi-protocol, multi-probability grid: every metric of every cell,
/// and the assembled figure (series order, points, runs order), must be
/// bit-identical between worker counts — including a worker count larger
/// than the cell count.
#[test]
fn full_grid_is_bit_identical_across_worker_counts() {
    let sys = SystemConfig::default();
    let run = quick();
    let protocols = [Protocol::Ps, Protocol::Os, Protocol::PsAa];
    let probs = [0.0, 0.1];
    let make = |w| WorkloadSpec::hotcold(Locality::Low, w);
    let seq = sweep_probs_workers("t", "grid", &protocols, &sys, &run, &probs, make, 1);
    let par4 = sweep_probs_workers("t", "grid", &protocols, &sys, &run, &probs, make, 4);
    let par8 = sweep_probs_workers("t", "grid", &protocols, &sys, &run, &probs, make, 8);
    assert_eq!(seq, par4, "4 workers must replay the sequential figure");
    assert_eq!(seq, par8, "8 workers must replay the sequential figure");
    // Ordered assembly: runs are protocol-major like the sequential loop.
    assert_eq!(seq.runs.len(), protocols.len() * probs.len());
    for (pi, p) in protocols.iter().enumerate() {
        for (wi, &w) in probs.iter().enumerate() {
            let m = &seq.runs[pi * probs.len() + wi];
            assert_eq!(m.protocol, p.name());
            assert_eq!(m.write_prob, w);
        }
    }
}

/// Cells get seeds derived from their coordinates: two cells of the same
/// grid never share a random stream, and the derivation is stable.
#[test]
fn grid_cells_use_distinct_derived_seeds() {
    let base = quick().seed;
    let mut seeds = Vec::new();
    for p in [Protocol::Ps, Protocol::PsAa] {
        for w in [0.0, 0.1, 0.2] {
            seeds.push(cell_seed(base, p, w, "HOTCOLD"));
        }
    }
    let mut dedup = seeds.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), seeds.len(), "all cell seeds distinct");
}
