//! Experiment runner: write-probability sweeps over all five protocols,
//! producing the paper's figures.
//!
//! Sweeps execute on the parallel scheduler in [`crate::sweep`]: cells
//! are seeded from their `(base_seed, protocol, write_prob, family)`
//! coordinates and fanned across worker threads, so a figure regenerated
//! at any worker count is bit-identical to the sequential run.

use crate::config::{RunConfig, SystemConfig};
use crate::driver::Simulator;
use crate::metrics::{Figure, RunMetrics, Series};
use crate::sweep::{default_workers, run_cells, SweepCell};
use fgs_core::Protocol;
use fgs_workload::WorkloadSpec;

/// The write-probability grid used for every throughput figure.
pub const WRITE_PROBS: [f64; 7] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30];

/// Runs one simulation point. Uses `run.seed` directly (no cell
/// derivation): this is the single-point API, not a sweep cell.
pub fn run_point(
    protocol: Protocol,
    spec: WorkloadSpec,
    sys: &SystemConfig,
    run: &RunConfig,
) -> RunMetrics {
    Simulator::new(protocol, spec, sys.clone(), run.clone()).run()
}

/// Sweeps `protocols` × `WRITE_PROBS` for a workload family, producing one
/// figure. `make_spec` maps a write probability to the workload spec.
pub fn sweep(
    id: &str,
    title: &str,
    protocols: &[Protocol],
    sys: &SystemConfig,
    run: &RunConfig,
    make_spec: impl Fn(f64) -> WorkloadSpec,
) -> Figure {
    sweep_probs(id, title, protocols, sys, run, &WRITE_PROBS, make_spec)
}

/// Like [`sweep`] but over an explicit write-probability grid. Runs on
/// [`default_workers`] threads (override with `FGS_SIM_WORKERS`).
pub fn sweep_probs(
    id: &str,
    title: &str,
    protocols: &[Protocol],
    sys: &SystemConfig,
    run: &RunConfig,
    probs: &[f64],
    make_spec: impl Fn(f64) -> WorkloadSpec,
) -> Figure {
    sweep_probs_workers(
        id,
        title,
        protocols,
        sys,
        run,
        probs,
        make_spec,
        default_workers(),
    )
}

/// Like [`sweep_probs`] with an explicit worker count. `workers == 1`
/// runs sequentially; any count produces bit-identical figures.
pub fn sweep_probs_workers(
    id: &str,
    title: &str,
    protocols: &[Protocol],
    sys: &SystemConfig,
    run: &RunConfig,
    probs: &[f64],
    make_spec: impl Fn(f64) -> WorkloadSpec,
    workers: usize,
) -> Figure {
    // Cells in protocol-major order, matching the historical sequential
    // loop; the scheduler returns metrics in exactly this order.
    let cells: Vec<SweepCell> = protocols
        .iter()
        .flat_map(|&p| probs.iter().map(move |&w| (p, w)))
        .map(|(protocol, write_prob)| SweepCell {
            protocol,
            write_prob,
            spec: make_spec(write_prob),
        })
        .collect();
    let runs = run_cells(&cells, sys, run, workers);
    let series = protocols
        .iter()
        .enumerate()
        .map(|(pi, &p)| Series {
            protocol: p.name().to_string(),
            points: probs
                .iter()
                .enumerate()
                .map(|(wi, &w)| (w, runs[pi * probs.len() + wi].throughput))
                .collect(),
        })
        .collect();
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_label: "write_prob".to_string(),
        y_label: "throughput (txns/sec)".to_string(),
        series,
        runs,
    }
}

/// Normalizes a figure's series to one protocol's throughput (the §5.6.1
/// scale-up presentation: every curve as a fraction of PS-AA).
pub fn normalize_to(fig: &Figure, reference: Protocol) -> Figure {
    let reference_points: Vec<(f64, f64)> = fig
        .series
        .iter()
        .find(|s| s.protocol == reference.name())
        .map(|s| s.points.clone())
        .expect("reference protocol present");
    let series = fig
        .series
        .iter()
        .map(|s| Series {
            protocol: s.protocol.clone(),
            points: s
                .points
                .iter()
                .zip(&reference_points)
                .map(|(&(x, y), &(_, r))| (x, if r > 0.0 { y / r } else { 0.0 }))
                .collect(),
        })
        .collect();
    Figure {
        id: format!("{}-normalized", fig.id),
        title: format!("{} (normalized to {})", fig.title, reference.name()),
        x_label: fig.x_label.clone(),
        y_label: format!("throughput relative to {}", reference.name()),
        series,
        runs: Vec::new(),
    }
}
