//! Per-run output metrics.

use fgs_core::Protocol;
use serde::{Deserialize, Serialize};

/// The measured results of one simulation run.
///
/// `PartialEq` compares every field bit-for-bit — the determinism
/// regression tests assert parallel and sequential sweeps agree exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Protocol name ("PS-AA", …).
    pub protocol: String,
    /// Workload name ("HOTCOLD", …).
    pub workload: String,
    /// Per-object write probability of the run.
    pub write_prob: f64,
    /// Committed transactions per second (the paper's primary metric).
    pub throughput: f64,
    /// 90% batch-means confidence half-width on the throughput.
    pub throughput_ci: f64,
    /// Mean transaction response time in milliseconds (first submission to
    /// commit, across restarts).
    pub response_ms: f64,
    /// Mean latency of a remote object access in milliseconds (request
    /// sent → grant delivered), which includes server lock waits — the
    /// paper's "average lock waits" metric.
    pub remote_access_ms: f64,
    /// Deadlock restarts per committed transaction (the paper's
    /// "transaction restart rate").
    pub restarts_per_commit: f64,
    /// Committed transactions during the measured period.
    pub commits: u64,
    /// Deadlock aborts during the measured period.
    pub aborts: u64,
    /// Messages (both directions) per commit.
    pub msgs_per_commit: f64,
    /// Server CPU utilization in the measured period.
    pub server_cpu_util: f64,
    /// Mean client CPU utilization.
    pub client_cpu_util: f64,
    /// Mean disk utilization.
    pub disk_util: f64,
    /// Network utilization.
    pub net_util: f64,
    /// Server buffer hit rate.
    pub server_hit_rate: f64,
    /// Mean client cache hit rate (object accesses served locally).
    pub client_hit_rate: f64,
    /// Callback request messages sent by the server.
    pub callbacks: u64,
    /// De-escalations performed (PS-AA).
    pub deescalations: u64,
    /// Fraction of write grants that were page-level.
    pub page_grant_frac: f64,
}

impl RunMetrics {
    /// A compact single-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<7} {:<12} w={:<5.2} tps={:>8.2} ±{:>5.2} resp={:>7.1}ms msgs/c={:>6.1} \
             srvCPU={:>4.0}% disk={:>4.0}% aborts={}",
            self.protocol,
            self.workload,
            self.write_prob,
            self.throughput,
            self.throughput_ci,
            self.response_ms,
            self.msgs_per_commit,
            self.server_cpu_util * 100.0,
            self.disk_util * 100.0,
            self.aborts,
        )
    }
}

/// One (protocol, sweep) series for a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Protocol of this series.
    pub protocol: String,
    /// (write probability, throughput) points.
    pub points: Vec<(f64, f64)>,
}

/// A complete reproduced figure: several protocol series over one sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure identifier ("fig3", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// All underlying run metrics.
    pub runs: Vec<RunMetrics>,
}

impl Figure {
    /// Renders the figure as an aligned text table (protocols as columns).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:<10}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>10}", s.protocol);
        }
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:<10.3}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "{y:>10.2}");
                    }
                    None => {
                        let _ = write!(out, "{:>10}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// The y-value for (protocol, x), if present.
    pub fn value(&self, protocol: Protocol, x: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.protocol == protocol.name())
            .and_then(|s| {
                s.points
                    .iter()
                    .find(|p| (p.0 - x).abs() < 1e-9)
                    .map(|p| p.1)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            protocol: "PS-AA".into(),
            workload: "HOTCOLD".into(),
            write_prob: 0.1,
            throughput: 42.5,
            throughput_ci: 1.2,
            response_ms: 230.0,
            remote_access_ms: 3.5,
            restarts_per_commit: 0.01,
            commits: 8_500,
            aborts: 3,
            msgs_per_commit: 18.0,
            server_cpu_util: 0.71,
            client_cpu_util: 0.30,
            disk_util: 0.55,
            net_util: 0.11,
            server_hit_rate: 0.9,
            client_hit_rate: 0.8,
            callbacks: 100,
            deescalations: 10,
            page_grant_frac: 0.9,
        }
    }

    #[test]
    fn summary_contains_key_numbers() {
        let s = metrics().summary();
        assert!(s.contains("PS-AA") && s.contains("42.50") && s.contains("HOTCOLD"));
    }

    #[test]
    fn figure_table_and_lookup() {
        let fig = Figure {
            id: "fig3".into(),
            title: "HOTCOLD, low locality".into(),
            x_label: "write_prob".into(),
            y_label: "tps".into(),
            series: vec![
                Series {
                    protocol: "PS".into(),
                    points: vec![(0.0, 50.0), (0.1, 30.0)],
                },
                Series {
                    protocol: "PS-AA".into(),
                    points: vec![(0.0, 50.0), (0.1, 40.0)],
                },
            ],
            runs: vec![],
        };
        let table = fig.to_table();
        assert!(table.contains("fig3") && table.contains("PS-AA"));
        assert_eq!(fig.value(Protocol::PsAa, 0.1), Some(40.0));
        assert_eq!(fig.value(Protocol::Ps, 0.1), Some(30.0));
        assert_eq!(fig.value(Protocol::Os, 0.1), None);
    }
}
