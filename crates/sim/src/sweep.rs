//! The parallel sweep scheduler: fans independent sweep cells
//! (protocol × write probability × workload) across worker threads.
//!
//! Every figure in the paper is a sweep of mutually independent
//! simulation cells, so the executor is embarrassingly parallel by
//! construction — the engineering is in keeping it **bit-deterministic**
//! and bounded:
//!
//! * **Seeding** — each cell's RNG seed is derived from
//!   `(base_seed, protocol, write_prob, workload family)` by
//!   [`cell_seed`], never from execution order, so a cell's result is a
//!   pure function of its coordinates. Sequential and parallel runs (at
//!   any worker count) produce bit-identical metrics.
//! * **Scheduling** — workers claim cells from a shared atomic cursor
//!   (a lock-free injector queue over the fixed cell list); there is no
//!   work-order dependence to race on.
//! * **Bounded memory** — finished [`RunMetrics`] flow back over a
//!   bounded channel sized to the worker count, so a slow consumer
//!   throttles producers instead of buffering a whole figure.
//! * **Ordered assembly** — results are slotted back by cell index;
//!   callers always observe the sequential order.
//!
//! Thread-safety story: the scheduler shares only the immutable cell
//! list, one `AtomicUsize`, and an mpsc channel between threads. It
//! takes no locks, so the lock-order DAG enforced by fgs-lint is
//! unaffected.

use crate::config::{RunConfig, SystemConfig};
use crate::driver::Simulator;
use crate::metrics::RunMetrics;
use fgs_core::Protocol;
use fgs_workload::WorkloadSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One independent simulation point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Per-object write probability (the figure's x-coordinate).
    pub write_prob: f64,
    /// The fully instantiated workload.
    pub spec: WorkloadSpec,
}

/// SplitMix64 finalizer (Steele, Lea & Flood): a bijective mixer whose
/// output bits all depend on all input bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string, for folding protocol / family names into seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the RNG seed for one sweep cell from its coordinates.
///
/// The derivation depends only on `(base_seed, protocol, write_prob,
/// family)` — never on execution order or thread assignment — so the
/// sequential and parallel schedulers produce bit-identical metrics, and
/// distinct cells get statistically independent random streams instead
/// of replaying one seed across the whole grid.
pub fn cell_seed(base_seed: u64, protocol: Protocol, write_prob: f64, family: &str) -> u64 {
    let mut h = splitmix64(base_seed);
    h = splitmix64(h ^ fnv1a(protocol.name()));
    h = splitmix64(h ^ write_prob.to_bits());
    h = splitmix64(h ^ fnv1a(family));
    h
}

/// Resolves the sweep worker count: `FGS_SIM_WORKERS` if set (a value of
/// `1` forces the sequential path), else the machine's available
/// parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("FGS_SIM_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs one cell with its derived seed.
fn run_cell(cell: &SweepCell, sys: &SystemConfig, run: &RunConfig) -> RunMetrics {
    let seeded = RunConfig {
        seed: cell_seed(run.seed, cell.protocol, cell.write_prob, cell.spec.name),
        ..run.clone()
    };
    Simulator::new(cell.protocol, cell.spec.clone(), sys.clone(), seeded).run()
}

/// Executes every cell and returns the metrics **in cell order**, using
/// up to `workers` threads. `workers <= 1` (or a single cell) runs
/// inline with zero thread overhead; the output is bit-identical either
/// way because each cell is a pure function of its coordinates and
/// derived seed.
pub fn run_cells(
    cells: &[SweepCell],
    sys: &SystemConfig,
    run: &RunConfig,
    workers: usize,
) -> Vec<RunMetrics> {
    let workers = workers.min(cells.len()).max(1);
    if workers == 1 {
        return cells.iter().map(|c| run_cell(c, sys, run)).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Backpressure: at most ~2 finished-but-unassembled results per
    // worker in flight, so a huge grid never buffers unboundedly.
    let (tx, rx) = mpsc::sync_channel::<(usize, RunMetrics)>(workers * 2);
    let mut results: Vec<Option<RunMetrics>> = Vec::new();
    results.resize_with(cells.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let m = run_cell(cell, sys, run);
                if tx.send((i, m)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Assemble in order as results stream in; the channel closes
        // when the last worker exits (normally or by panic — a worker
        // panic propagates when the scope joins).
        while let Ok((i, m)) = rx.recv() {
            results[i] = Some(m);
        }
    });
    results
        .into_iter()
        .map(|m| m.expect("every cell completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_stable_and_sensitive() {
        let base = 0xF65_1994;
        let a = cell_seed(base, Protocol::PsAa, 0.1, "HOTCOLD");
        assert_eq!(a, cell_seed(base, Protocol::PsAa, 0.1, "HOTCOLD"));
        for (p, w, f) in [
            (Protocol::Ps, 0.1, "HOTCOLD"),
            (Protocol::PsAa, 0.2, "HOTCOLD"),
            (Protocol::PsAa, 0.1, "UNIFORM"),
        ] {
            assert_ne!(a, cell_seed(base, p, w, f), "{p} {w} {f}");
        }
        assert_ne!(a, cell_seed(base + 1, Protocol::PsAa, 0.1, "HOTCOLD"));
    }

    #[test]
    fn workers_env_override_parses() {
        // Only exercises the parse path indirectly; the env itself is
        // process-global, so don't mutate it here.
        assert!(default_workers() >= 1);
    }
}
