//! The server's page buffer model: LRU with dirty flags and pins.
//!
//! Only residency is modelled (the simulator carries no page bytes). Dirty
//! pages are those installed by commits and not yet written back; evicting
//! one costs a disk write at the caller.

use fgs_core::PageId;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug)]
struct Entry {
    dirty: bool,
    pins: u32,
    tick: u64,
}

/// A server buffer pool of `capacity` pages.
#[derive(Debug)]
pub struct ServerBuffer {
    capacity: usize,
    entries: HashMap<PageId, Entry>,
    lru: BTreeMap<u64, PageId>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ServerBuffer {
    /// An empty buffer pool.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ServerBuffer {
            capacity,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether `page` is resident; counts a hit/miss and touches it.
    pub fn probe(&mut self, page: PageId) -> bool {
        if self.entries.contains_key(&page) {
            self.hits += 1;
            self.touch(page);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Whether `page` is resident (no statistics side effects).
    pub fn contains(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    /// Installs `page` (read from disk, or shipped by a commit), evicting
    /// LRU unpinned pages as needed. Returns the *dirty* pages evicted,
    /// which the caller must schedule disk writes for.
    pub fn install(&mut self, page: PageId, dirty: bool) -> Vec<PageId> {
        let next = self.next_tick();
        match self.entries.get_mut(&page) {
            Some(e) => {
                self.lru.remove(&e.tick);
                e.tick = next;
                e.dirty |= dirty;
                self.lru.insert(next, page);
                Vec::new()
            }
            None => {
                self.entries.insert(
                    page,
                    Entry {
                        dirty,
                        pins: 0,
                        tick: next,
                    },
                );
                self.lru.insert(next, page);
                self.evict_to_capacity(page)
            }
        }
    }

    /// Pins `page` (it may not be evicted until unpinned).
    pub fn pin(&mut self, page: PageId) {
        if let Some(e) = self.entries.get_mut(&page) {
            e.pins += 1;
        }
    }

    /// Releases one pin on `page`.
    pub fn unpin(&mut self, page: PageId) {
        if let Some(e) = self.entries.get_mut(&page) {
            debug_assert!(e.pins > 0, "unpin without pin");
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Marks `page` most recently used.
    pub fn touch(&mut self, page: PageId) {
        let next = self.next_tick();
        if let Some(e) = self.entries.get_mut(&page) {
            self.lru.remove(&e.tick);
            e.tick = next;
            self.lru.insert(next, page);
        }
    }

    /// Buffer hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evicts down to capacity, never choosing `just_installed` (the page
    /// whose arrival triggered the eviction).
    fn evict_to_capacity(&mut self, just_installed: PageId) -> Vec<PageId> {
        let mut dirty_evicted = Vec::new();
        while self.entries.len() > self.capacity {
            let victim = self
                .lru
                .values()
                .copied()
                .find(|p| *p != just_installed && self.entries[p].pins == 0);
            let Some(victim) = victim else {
                break; // everything pinned: tolerate transient overflow
            };
            let e = self.entries.remove(&victim).expect("victim resident");
            self.lru.remove(&e.tick);
            if e.dirty {
                dirty_evicted.push(victim);
            }
        }
        dirty_evicted
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId(n)
    }

    #[test]
    fn probe_counts_hits_and_misses() {
        let mut b = ServerBuffer::new(2);
        assert!(!b.probe(p(1)));
        b.install(p(1), false);
        assert!(b.probe(p(1)));
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn lru_eviction_returns_dirty_victims() {
        let mut b = ServerBuffer::new(2);
        assert!(b.install(p(1), true).is_empty());
        assert!(b.install(p(2), false).is_empty());
        b.touch(p(1));
        // Page 2 is LRU and clean: evicted silently.
        assert!(b.install(p(3), false).is_empty());
        assert!(!b.contains(p(2)));
        // Page 1 is dirty: eviction reports it for write-back.
        assert_eq!(b.install(p(4), false), vec![p(1)]);
    }

    #[test]
    fn pins_protect_pages() {
        let mut b = ServerBuffer::new(1);
        b.install(p(1), true);
        b.pin(p(1));
        assert!(b.install(p(2), false).is_empty(), "nothing evictable");
        assert!(b.contains(p(1)) && b.contains(p(2)), "overflow tolerated");
        b.unpin(p(1));
        // The overflow drains fully once pins release: p1 (dirty, reported)
        // and p2 (clean, silent) both go, leaving just p3.
        assert_eq!(b.install(p(3), false), vec![p(1)]);
        assert_eq!(b.len(), 1);
        assert!(b.contains(p(3)));
    }

    #[test]
    fn reinstall_keeps_dirty_bit() {
        let mut b = ServerBuffer::new(4);
        b.install(p(1), true);
        b.install(p(1), false);
        b.install(p(2), false);
        b.install(p(3), false);
        b.install(p(4), false);
        // Evicting p1 must still report it dirty.
        assert_eq!(b.install(p(5), false), vec![p(1)]);
    }
}
