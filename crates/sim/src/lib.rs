//! # fgs-sim
//!
//! A closed-queueing simulator of a page-server OODBMS, reproducing the
//! system model of Carey, Franklin & Zaharioudakis (SIGMOD 1994), §4: one
//! server (30 MIPS CPU, 50%-of-DB buffer, two 10–30 ms disks), ten client
//! workstations (15 MIPS, 25%-of-DB caches), an 80 Mbit/s FIFO network,
//! and the Table-1 instruction budgets for messages, locks, copies, merges
//! and I/O initiation.
//!
//! The protocol logic is **not** re-implemented here: the simulator drives
//! the same [`fgs_core`] client/server engines the real `fgs-oodb` engine
//! uses, charging simulated costs for every action they emit.
//!
//! ```no_run
//! use fgs_sim::{run_point, RunConfig, SystemConfig};
//! use fgs_core::Protocol;
//! use fgs_workload::{Locality, WorkloadSpec};
//!
//! let m = run_point(
//!     Protocol::PsAa,
//!     WorkloadSpec::hotcold(Locality::Low, 0.1),
//!     &SystemConfig::default(),
//!     &RunConfig::default(),
//! );
//! println!("{}", m.summary());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod buffer;
mod config;
mod driver;
mod experiment;
mod metrics;
mod sweep;

pub use buffer::ServerBuffer;
pub use config::{RunConfig, SystemConfig};
pub use driver::Simulator;
pub use experiment::{
    normalize_to, run_point, sweep, sweep_probs, sweep_probs_workers, WRITE_PROBS,
};
pub use metrics::{Figure, RunMetrics, Series};
pub use sweep::{cell_seed, default_workers, run_cells, SweepCell};
