//! System and overhead parameters (the paper's Table 1).
//!
//! Rows of the OCR'd table were misaligned in the surviving text; garbled
//! values are reconstructed from the companion studies [Care91, Fran92a,
//! Fran93], which used the same simulator (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

/// The paper's Table 1, plus the per-object client processing cost from
/// the workload model (§4.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Client CPU speed in MIPS.
    pub client_mips: f64,
    /// Server CPU speed in MIPS.
    pub server_mips: f64,
    /// Per-client buffer size as a fraction of the database.
    pub client_buf_frac: f64,
    /// Server buffer size as a fraction of the database.
    pub server_buf_frac: f64,
    /// Number of disks at the server.
    pub server_disks: usize,
    /// Minimum disk access time, in seconds.
    pub min_disk_time: f64,
    /// Maximum disk access time, in seconds.
    pub max_disk_time: f64,
    /// Network bandwidth in bits per second.
    pub network_bps: f64,
    /// Number of client workstations.
    pub num_clients: u16,
    /// Page size in bytes.
    pub page_size: u32,
    /// Fixed instruction cost to send or receive a message.
    pub fixed_msg_inst: f64,
    /// Additional instructions per message, expressed per `page_size`
    /// bytes of payload ("10,000 per 4 KB page").
    pub per_page_msg_inst: f64,
    /// Size of a control message in bytes.
    pub control_msg_bytes: u32,
    /// Instructions per lock/unlock pair.
    pub lock_inst: f64,
    /// Instructions to register or unregister a copy.
    pub register_copy_inst: f64,
    /// CPU instructions to initiate a disk I/O.
    pub disk_overhead_inst: f64,
    /// Instructions to merge one object between divergent page copies.
    pub copy_merge_inst: f64,
    /// Client CPU instructions to process one object read (doubled for
    /// writes). Derived from the 30,000-instructions-per-page figure of
    /// [Care91] at an average low-locality of 4 objects per page.
    pub object_proc_inst: f64,
    /// §6.1 "redo-at-server": instead of merging shipped page copies, the
    /// server replays the transaction's logged updates, charging the
    /// object-update CPU work server-side. Shifts load from clients to the
    /// server (the ablation bench quantifies by how much).
    pub redo_at_server: bool,
    /// Client think time between transactions, in seconds.
    pub think_time: f64,
    /// Delay before a deadlock victim is resubmitted, in seconds.
    pub restart_delay: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            client_mips: 15.0,
            server_mips: 30.0,
            client_buf_frac: 0.25,
            server_buf_frac: 0.50,
            server_disks: 2,
            min_disk_time: 0.010,
            max_disk_time: 0.030,
            network_bps: 80e6,
            num_clients: 10,
            page_size: 4096,
            fixed_msg_inst: 20_000.0,
            per_page_msg_inst: 10_000.0,
            control_msg_bytes: 256,
            lock_inst: 300.0,
            register_copy_inst: 300.0,
            disk_overhead_inst: 5_000.0,
            copy_merge_inst: 300.0,
            object_proc_inst: 7_500.0,
            redo_at_server: false,
            think_time: 0.0,
            restart_delay: 0.0,
        }
    }
}

impl SystemConfig {
    /// CPU instructions to send or receive a message of `bytes` bytes.
    pub fn msg_inst(&self, bytes: u32) -> f64 {
        self.fixed_msg_inst + self.per_page_msg_inst * f64::from(bytes) / f64::from(self.page_size)
    }

    /// On-the-wire time for `bytes` bytes, in seconds.
    pub fn wire_secs(&self, bytes: u32) -> f64 {
        f64::from(bytes) * 8.0 / self.network_bps
    }

    /// The size in bytes of an object message payload for `objects_per_page`.
    pub fn object_bytes(&self, objects_per_page: u16) -> u32 {
        self.page_size / u32::from(objects_per_page)
    }

    /// Client buffer size in pages for a database of `db_pages`.
    pub fn client_buf_pages(&self, db_pages: u32) -> usize {
        ((db_pages as f64 * self.client_buf_frac) as usize).max(1)
    }

    /// Server buffer size in pages for a database of `db_pages`.
    pub fn server_buf_pages(&self, db_pages: u32) -> usize {
        ((db_pages as f64 * self.server_buf_frac) as usize).max(1)
    }

    /// Basic validity checks.
    pub fn validate(&self) {
        assert!(self.client_mips > 0.0 && self.server_mips > 0.0);
        assert!(self.min_disk_time > 0.0 && self.min_disk_time <= self.max_disk_time);
        assert!(self.network_bps > 0.0);
        assert!(self.num_clients > 0);
        assert!(self.page_size > 0);
        assert!(self.server_disks > 0);
        assert!((0.0..=1.0).contains(&self.client_buf_frac));
        assert!((0.0..=1.0).contains(&self.server_buf_frac));
    }
}

/// Length and sampling parameters of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Simulated duration in seconds (after which the run stops).
    pub duration: f64,
    /// Warm-up period excluded from statistics, in seconds.
    pub warmup: f64,
    /// Number of batches for the batch-means confidence interval.
    pub batches: usize,
    /// RNG seed; every run with the same seed and configuration is
    /// bit-for-bit identical.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            duration: 220.0,
            warmup: 20.0,
            batches: 10,
            seed: 0xF65_1994,
        }
    }
}

impl RunConfig {
    /// Measured (post-warm-up) span in seconds.
    pub fn measured_secs(&self) -> f64 {
        self.duration - self.warmup
    }

    /// Basic validity checks.
    pub fn validate(&self) {
        assert!(self.duration > self.warmup && self.warmup >= 0.0);
        assert!(self.batches >= 2, "batch means needs at least two batches");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = SystemConfig::default();
        c.validate();
        assert_eq!(c.client_mips, 15.0);
        assert_eq!(c.server_mips, 30.0);
        assert_eq!(c.num_clients, 10);
        assert_eq!(c.page_size, 4096);
        assert_eq!(c.client_buf_pages(1250), 312);
        assert_eq!(c.server_buf_pages(1250), 625);
    }

    #[test]
    fn message_cost_model() {
        let c = SystemConfig::default();
        // Control message: fixed + ~256/4096 of the per-page increment.
        let ctl = c.msg_inst(c.control_msg_bytes);
        assert!((ctl - 20_625.0).abs() < 1.0);
        // Page message: fixed + per-page increment on the page payload.
        let page = c.msg_inst(c.control_msg_bytes + c.page_size);
        assert!((page - 30_625.0).abs() < 1.0);
    }

    #[test]
    fn wire_times() {
        let c = SystemConfig::default();
        // 4 KB page at 80 Mbit/s ≈ 0.41 ms.
        let t = c.wire_secs(4096);
        assert!((t - 4096.0 * 8.0 / 80e6).abs() < 1e-12);
    }

    #[test]
    fn object_sizing() {
        let c = SystemConfig::default();
        assert_eq!(c.object_bytes(20), 204);
    }

    #[test]
    fn run_config_validates() {
        let r = RunConfig::default();
        r.validate();
        assert!(r.measured_secs() > 0.0);
    }
}
