//! The discrete-event driver: wires the protocol engines (`fgs-core`) to
//! the resource model (`fgs-simkernel`) under the paper's Table-1 costs.
//!
//! One simulated system = one server (CPU, buffer pool, disks) + N client
//! workstations (CPU, cache, transaction source) + a FIFO network. Each
//! client runs transactions back to back (closed system): generate a
//! reference string, process object references one at a time — charging
//! client CPU per object, sending requests on misses/lock needs — then
//! commit. Every message costs CPU at both endpoints plus wire time; every
//! server buffer miss costs a disk access; commits cost a log force.

use crate::buffer::ServerBuffer;
use crate::config::{RunConfig, SystemConfig};
use crate::metrics::RunMetrics;
use fgs_core::client::{ClientAction, ClientEngine, TxnOutcome};
use fgs_core::server::{ServerAction, ServerEngine};
use fgs_core::{ClientId, Cost, DataGrant, PageId, Protocol, Request, ServerMsg, TxnId};
use fgs_simkernel::{
    BatchMeans, Calendar, Cpu, CpuClass, Duration, FifoServer, Pcg32, SimTime, Tally,
};
use fgs_workload::{ReferenceString, WorkloadGen, WorkloadSpec};
use std::collections::{BTreeMap, HashMap};

/// Calendar events.
#[derive(Debug)]
enum Ev {
    /// A client CPU may have completed a request (generation-guarded).
    ClientCpu { c: usize, gen: u64 },
    /// The server CPU may have completed a request.
    ServerCpu { gen: u64 },
    /// A message finished its wire time.
    NetDone { msg: u64 },
    /// A server disk finished reading a page.
    DiskReadDone { page: PageId },
    /// The commit log force for a `CommitDone` message finished.
    LogForceDone { msg: u64 },
    /// A client's think time expired: submit the next transaction.
    ThinkDone { c: usize },
    /// A deadlock victim's restart delay expired: resubmit.
    RestartDue { c: usize },
}

/// CPU-job continuations, keyed by job token.
#[derive(Debug)]
enum Cont {
    /// Pure accounting charge.
    Noop,
    /// A message finished its send-side CPU: enter the network.
    MsgSent(u64),
    /// A message finished its receive-side CPU: deliver it.
    MsgReceived(u64),
    /// The server finished protocol processing: carry out the actions.
    ServerWork {
        actions: Vec<ServerAction>,
        pinned: Vec<PageId>,
    },
    /// A client finished processing an object reference (guarded by the
    /// transaction sequence so stale completions after an abort are
    /// ignored).
    ClientProc { c: usize, seq: u64 },
}

#[derive(Debug)]
enum Payload {
    ToServer {
        from: ClientId,
        req: Request,
    },
    ToClient {
        to: ClientId,
        msg: ServerMsg,
        seq: u64,
    },
}

#[derive(Debug)]
struct Msg {
    payload: Payload,
    bytes: u32,
}

/// Work waiting on a server disk read.
#[derive(Debug)]
enum AfterRead {
    /// Part of a multi-page request prefetch (ticket into `multi_wait`).
    Ticket(u64),
    /// An outgoing message whose page payload needed fetching.
    Dispatch(u64),
}

struct Client {
    engine: ClientEngine,
    refs: ReferenceString,
    idx: usize,
    txn_seq: u64,
    started_first: SimTime,
    resubmitting: bool,
    /// Reorder buffer for server messages (per-pair FIFO restored after
    /// disk-delayed sends).
    next_in_seq: u64,
    held: BTreeMap<u64, ServerMsg>,
    /// When the outstanding access request was sent (lock-wait metric).
    access_sent: Option<SimTime>,
}

/// The assembled simulation.
pub struct Simulator {
    protocol: Protocol,
    sys: SystemConfig,
    run: RunConfig,
    gen: WorkloadGen,
    cal: Calendar<Ev>,
    server: ServerEngine,
    buffer: ServerBuffer,
    server_cpu: Cpu,
    client_cpus: Vec<Cpu>,
    disks: Vec<FifoServer>,
    network: FifoServer,
    clients: Vec<Client>,
    out_seq: Vec<u64>,
    conts: HashMap<u64, Cont>,
    msgs: HashMap<u64, Msg>,
    in_flight: HashMap<PageId, Vec<AfterRead>>,
    multi_wait: HashMap<u64, (usize, ClientId, Request)>,
    next_token: u64,
    workload_rngs: Vec<Pcg32>,
    disk_rng: Pcg32,
    // measurements
    commits: u64,
    aborts: u64,
    messages: u64,
    batch_commits: Vec<u64>,
    response: Tally,
    remote_access: Tally,
    events_processed: u64,
}

impl Simulator {
    /// Builds a simulator for one (protocol, workload, system) point.
    pub fn new(protocol: Protocol, spec: WorkloadSpec, sys: SystemConfig, run: RunConfig) -> Self {
        sys.validate();
        run.validate();
        let gen = WorkloadGen::new(spec, sys.num_clients);
        let spec = gen.spec();
        let opp = spec.objects_per_page;
        let db_pages = spec.db_pages;
        let client_buf = sys.client_buf_pages(db_pages);
        let server_buf = sys.server_buf_pages(db_pages);
        let n = sys.num_clients as usize;
        let seed = run.seed;
        Simulator {
            protocol,
            server: ServerEngine::new(protocol, opp),
            buffer: ServerBuffer::new(server_buf),
            server_cpu: Cpu::new(sys.server_mips),
            client_cpus: (0..n).map(|_| Cpu::new(sys.client_mips)).collect(),
            disks: (0..sys.server_disks).map(|_| FifoServer::new()).collect(),
            network: FifoServer::new(),
            clients: (0..n)
                .map(|i| Client {
                    engine: ClientEngine::new(ClientId(i as u16), protocol, opp, client_buf),
                    refs: Vec::new(),
                    idx: 0,
                    txn_seq: 0,
                    started_first: SimTime::ZERO,
                    resubmitting: false,
                    next_in_seq: 0,
                    held: BTreeMap::new(),
                    access_sent: None,
                })
                .collect(),
            out_seq: vec![0; n],
            cal: Calendar::new(),
            conts: HashMap::new(),
            msgs: HashMap::new(),
            in_flight: HashMap::new(),
            multi_wait: HashMap::new(),
            next_token: 1,
            workload_rngs: (0..n).map(|i| Pcg32::new(seed, 100 + i as u64)).collect(),
            disk_rng: Pcg32::new(seed, 7),
            commits: 0,
            aborts: 0,
            messages: 0,
            batch_commits: vec![0; run.batches],
            response: Tally::new(),
            remote_access: Tally::new(),
            events_processed: 0,
            gen,
            sys,
            run,
        }
    }

    /// Runs to completion and reports the measured metrics.
    pub fn run(mut self) -> RunMetrics {
        let end = SimTime::from_secs(self.run.duration);
        for c in 0..self.clients.len() {
            self.start_txn(c);
        }
        while let Some(t) = self.cal.peek_time() {
            if t > end {
                break;
            }
            let (_, ev) = self.cal.pop().expect("peeked");
            self.handle_event(ev);
            self.events_processed += 1;
            #[cfg(debug_assertions)]
            if self.events_processed % 4096 == 0 {
                self.server.check_invariants();
            }
        }
        if std::env::var_os("FGS_SIM_DEBUG").is_some() {
            eprintln!(
                "events={} cal_peak~={} msgs={} commits={}",
                self.events_processed,
                self.cal.len(),
                self.messages,
                self.commits
            );
        }
        self.finish(end)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::ClientCpu { c, gen } => {
                let now = self.cal.now();
                // Stale events (superseded by a later submit) must not
                // re-arm: the current generation already has its event.
                if let Some(done) = self.client_cpus[c].complete(now, gen) {
                    self.arm_client_cpu(c);
                    for token in done {
                        self.run_cont(token);
                    }
                }
            }
            Ev::ServerCpu { gen } => {
                let now = self.cal.now();
                if let Some(done) = self.server_cpu.complete(now, gen) {
                    self.arm_server_cpu();
                    for token in done {
                        self.run_cont(token);
                    }
                }
            }
            Ev::NetDone { msg } => self.on_net_done(msg),
            Ev::DiskReadDone { page } => self.on_disk_read_done(page),
            Ev::LogForceDone { msg } => self.enter_send_cpu(msg),
            Ev::ThinkDone { c } | Ev::RestartDue { c } => self.start_txn(c),
        }
    }

    fn run_cont(&mut self, token: u64) {
        let cont = self.conts.remove(&token).expect("continuation registered");
        match cont {
            Cont::Noop => {}
            Cont::MsgSent(id) => {
                let bytes = self.msgs[&id].bytes;
                let wire = Duration::from_secs(self.sys.wire_secs(bytes));
                let done = self.network.submit(self.cal.now(), wire);
                self.cal.schedule(done, Ev::NetDone { msg: id });
            }
            Cont::MsgReceived(id) => self.deliver(id),
            Cont::ServerWork { actions, pinned } => {
                for a in actions {
                    match a {
                        // The completion stage of the simulated server:
                        // WAL — force the log, then acknowledge commit.
                        ServerAction::AckCommit { to, txn } => {
                            let id = self.stage_server_msg(to, ServerMsg::CommitDone { txn });
                            self.charge_server(self.sys.disk_overhead_inst);
                            let done = self.disk_io();
                            self.cal.schedule(done, Ev::LogForceDone { msg: id });
                        }
                        ServerAction::Send { to, msg } => self.server_send(to, msg),
                    }
                }
                for p in pinned {
                    self.buffer.unpin(p);
                }
            }
            Cont::ClientProc { c, seq } => {
                // Ignore stale completions from a transaction that was
                // aborted mid-processing.
                if self.clients[c].txn_seq == seq && self.clients[c].engine.has_active_txn() {
                    self.step(c);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    fn start_txn(&mut self, c: usize) {
        let now = self.cal.now();
        let cl = &mut self.clients[c];
        cl.txn_seq += 1;
        let txn = TxnId::new(ClientId(c as u16), cl.txn_seq);
        if !cl.resubmitting {
            cl.refs = self
                .gen
                .gen_transaction(c as u16, &mut self.workload_rngs[c]);
            cl.started_first = now;
        }
        cl.idx = 0;
        cl.engine.begin(txn);
        self.step(c);
    }

    /// Advances client `c`'s transaction: next reference, or commit.
    fn step(&mut self, c: usize) {
        let cl = &mut self.clients[c];
        let outcome = if cl.idx >= cl.refs.len() {
            cl.engine.commit()
        } else {
            let r = cl.refs[cl.idx];
            cl.engine.access(r.oid, r.write)
        };
        self.dispatch_client(c, outcome.actions, outcome.cost);
    }

    fn dispatch_client(&mut self, c: usize, actions: Vec<ClientAction>, cost: Cost) {
        // Lock/copy/merge work is charged with the first CPU job this
        // outcome generates (or a standalone charge if there is none).
        let mut extra = self.cost_inst(cost);
        for a in actions {
            match a {
                ClientAction::Send(req) => {
                    if matches!(req, Request::Read { .. } | Request::Write { .. }) {
                        self.clients[c].access_sent.get_or_insert(self.cal.now());
                    }
                    let inst = std::mem::take(&mut extra);
                    self.client_send(c, req, inst);
                }
                ClientAction::AccessReady { write, .. } => {
                    let now = self.cal.now();
                    let cl = &mut self.clients[c];
                    if let Some(sent) = cl.access_sent.take() {
                        if now.as_secs() >= self.run.warmup {
                            self.remote_access.record((now - sent).as_secs() * 1e3);
                        }
                    }
                    cl.idx += 1;
                    let seq = cl.txn_seq;
                    let inst = self.sys.object_proc_inst * if write { 2.0 } else { 1.0 }
                        + std::mem::take(&mut extra);
                    self.submit_client_job(c, inst, CpuClass::User, Cont::ClientProc { c, seq });
                }
                ClientAction::TxnEnded { outcome, .. } => self.on_txn_ended(c, outcome),
                ClientAction::DroppedPage { .. } | ClientAction::DroppedObject { .. } => {}
            }
        }
        if extra > 0.0 {
            self.submit_client_job(c, extra, CpuClass::System, Cont::Noop);
        }
    }

    fn on_txn_ended(&mut self, c: usize, outcome: TxnOutcome) {
        let now = self.cal.now();
        match outcome {
            TxnOutcome::Committed => {
                self.commits += 1;
                let warmup = self.run.warmup;
                if now.as_secs() >= warmup {
                    let blen = self.run.measured_secs() / self.run.batches as f64;
                    let idx =
                        (((now.as_secs() - warmup) / blen) as usize).min(self.run.batches - 1);
                    self.batch_commits[idx] += 1;
                    self.response
                        .record((now - self.clients[c].started_first).as_secs() * 1000.0);
                }
                self.clients[c].resubmitting = false;
                let think = self.sys.think_time;
                self.cal
                    .schedule(now + Duration::from_secs(think), Ev::ThinkDone { c });
            }
            TxnOutcome::Deadlocked => {
                self.aborts += 1;
                self.clients[c].access_sent = None;
                self.clients[c].resubmitting = true;
                self.cal.schedule(
                    now + Duration::from_secs(self.sys.restart_delay),
                    Ev::RestartDue { c },
                );
            }
            TxnOutcome::Aborted => {
                // The simulator never aborts voluntarily.
                unreachable!("voluntary abort in simulation");
            }
        }
    }

    fn client_send(&mut self, c: usize, req: Request, extra_inst: f64) {
        let bytes = self.request_bytes(&req);
        let id = self.next_token();
        self.msgs.insert(
            id,
            Msg {
                payload: Payload::ToServer {
                    from: ClientId(c as u16),
                    req,
                },
                bytes,
            },
        );
        self.messages += 1;
        let inst = self.sys.msg_inst(bytes) + extra_inst;
        self.submit_client_job(c, inst, CpuClass::System, Cont::MsgSent(id));
    }

    /// Delivers a server→client message in per-pair FIFO order, holding
    /// early arrivals until their predecessors land.
    fn client_deliver(&mut self, c: usize, seq: u64, msg: ServerMsg) {
        self.clients[c].held.insert(seq, msg);
        loop {
            let cl = &mut self.clients[c];
            let next = cl.next_in_seq;
            let Some(msg) = cl.held.remove(&next) else {
                break;
            };
            cl.next_in_seq += 1;
            let outcome = cl.engine.handle_server(msg);
            self.dispatch_client(c, outcome.actions, outcome.cost);
        }
    }

    // ------------------------------------------------------------------
    // Server side
    // ------------------------------------------------------------------

    fn server_receive(&mut self, from: ClientId, req: Request) {
        let needed = self.pages_needed(&req);
        let missing: Vec<PageId> = needed
            .into_iter()
            .filter(|&p| !self.buffer.probe(p))
            .collect();
        if missing.is_empty() {
            self.server_process(from, req);
            return;
        }
        let ticket = self.next_token();
        self.multi_wait.insert(ticket, (missing.len(), from, req));
        for p in missing {
            self.charge_server(self.sys.disk_overhead_inst);
            let entry = self.in_flight.entry(p).or_default();
            let first = entry.is_empty();
            entry.push(AfterRead::Ticket(ticket));
            if first {
                let done = self.disk_io();
                self.cal.schedule(done, Ev::DiskReadDone { page: p });
            }
        }
    }

    fn server_process(&mut self, from: ClientId, req: Request) {
        // Commit: install the shipped (or read-modified) pages dirty.
        let mut extra_inst = 0.0;
        if let Request::Commit { writes, .. } = &req {
            let pages: Vec<PageId> = writes.iter().map(|w| w.page).collect();
            for p in pages {
                for victim in self.buffer.install(p, true) {
                    self.write_back(victim);
                }
            }
            if self.sys.redo_at_server {
                // §6.1: the server repeats every committed update instead
                // of merging shipped copies.
                let slots: u32 = writes.iter().map(|w| w.slots.len() as u32).sum();
                extra_inst += f64::from(slots) * 2.0 * self.sys.object_proc_inst;
            }
        }
        let outcome = self.server.handle(from, req);
        let inst = self.cost_inst(outcome.cost) + extra_inst;
        // Pin every page about to be shipped so it cannot be evicted
        // between now and the send.
        let mut pinned = Vec::new();
        for a in &outcome.actions {
            let ServerAction::Send { msg, .. } = a else {
                continue; // commit acks carry no payload
            };
            if let Some(p) = Self::page_payload(msg) {
                if self.buffer.contains(p) {
                    self.buffer.pin(p);
                    pinned.push(p);
                }
            }
        }
        self.submit_server_job(
            inst,
            CpuClass::System,
            Cont::ServerWork {
                actions: outcome.actions,
                pinned,
            },
        );
    }

    fn on_disk_read_done(&mut self, page: PageId) {
        for victim in self.buffer.install(page, false) {
            self.write_back(victim);
        }
        let waiters = self.in_flight.remove(&page).unwrap_or_default();
        for w in waiters {
            match w {
                AfterRead::Ticket(t) => {
                    let entry = self.multi_wait.get_mut(&t).expect("ticket live");
                    entry.0 -= 1;
                    if entry.0 == 0 {
                        let (_, from, req) = self.multi_wait.remove(&t).expect("ticket live");
                        self.server_process(from, req);
                    }
                }
                AfterRead::Dispatch(id) => self.enter_send_cpu(id),
            }
        }
    }

    /// Registers an outgoing server message (assigning its per-client
    /// sequence number immediately so ordering is preserved even when the
    /// actual send is delayed by disk I/O).
    fn stage_server_msg(&mut self, to: ClientId, msg: ServerMsg) -> u64 {
        let bytes = self.server_msg_bytes(&msg);
        let seq = self.out_seq[to.0 as usize];
        self.out_seq[to.0 as usize] += 1;
        let id = self.next_token();
        self.msgs.insert(
            id,
            Msg {
                payload: Payload::ToClient { to, msg, seq },
                bytes,
            },
        );
        self.messages += 1;
        id
    }

    fn server_send(&mut self, to: ClientId, msg: ServerMsg) {
        let page = Self::page_payload(&msg);
        let id = self.stage_server_msg(to, msg);
        if let Some(p) = page {
            if !self.buffer.probe(p) {
                // Shipping a page the buffer no longer holds: fetch first.
                self.charge_server(self.sys.disk_overhead_inst);
                let entry = self.in_flight.entry(p).or_default();
                let first = entry.is_empty();
                entry.push(AfterRead::Dispatch(id));
                if first {
                    let done = self.disk_io();
                    self.cal.schedule(done, Ev::DiskReadDone { page: p });
                }
                return;
            }
        }
        self.enter_send_cpu(id);
    }

    fn enter_send_cpu(&mut self, id: u64) {
        let msg = &self.msgs[&id];
        let inst = self.sys.msg_inst(msg.bytes);
        match msg.payload {
            Payload::ToClient { .. } => {
                self.submit_server_job(inst, CpuClass::System, Cont::MsgSent(id))
            }
            Payload::ToServer { .. } => unreachable!("client sends enter their own CPU"),
        }
    }

    fn on_net_done(&mut self, id: u64) {
        let msg = &self.msgs[&id];
        let inst = self.sys.msg_inst(msg.bytes);
        match &msg.payload {
            Payload::ToServer { .. } => {
                self.submit_server_job(inst, CpuClass::System, Cont::MsgReceived(id));
            }
            Payload::ToClient { to, .. } => {
                let c = to.0 as usize;
                self.submit_client_job(c, inst, CpuClass::System, Cont::MsgReceived(id));
            }
        }
    }

    fn deliver(&mut self, id: u64) {
        let msg = self.msgs.remove(&id).expect("message staged");
        match msg.payload {
            Payload::ToServer { from, req } => self.server_receive(from, req),
            Payload::ToClient { to, msg, seq } => self.client_deliver(to.0 as usize, seq, msg),
        }
    }

    // ------------------------------------------------------------------
    // Resources
    // ------------------------------------------------------------------

    fn submit_client_job(&mut self, c: usize, inst: f64, class: CpuClass, cont: Cont) {
        let token = self.next_token();
        self.conts.insert(token, cont);
        let now = self.cal.now();
        self.client_cpus[c].submit(now, token, inst, class);
        self.arm_client_cpu(c);
    }

    fn submit_server_job(&mut self, inst: f64, class: CpuClass, cont: Cont) {
        let token = self.next_token();
        self.conts.insert(token, cont);
        let now = self.cal.now();
        self.server_cpu.submit(now, token, inst, class);
        self.arm_server_cpu();
    }

    /// Standalone server CPU charge with no continuation.
    fn charge_server(&mut self, inst: f64) {
        self.submit_server_job(inst, CpuClass::System, Cont::Noop);
    }

    fn arm_client_cpu(&mut self, c: usize) {
        let now = self.cal.now();
        if let Some((t, gen)) = self.client_cpus[c].completion_event(now) {
            self.cal.schedule(t.max(now), Ev::ClientCpu { c, gen });
        }
    }

    fn arm_server_cpu(&mut self) {
        let now = self.cal.now();
        if let Some((t, gen)) = self.server_cpu.completion_event(now) {
            self.cal.schedule(t.max(now), Ev::ServerCpu { gen });
        }
    }

    /// One disk access on a uniformly chosen disk; returns completion time.
    fn disk_io(&mut self) -> SimTime {
        let d = self.disk_rng.below(self.disks.len() as u32) as usize;
        let service = self
            .disk_rng
            .uniform(self.sys.min_disk_time, self.sys.max_disk_time);
        self.disks[d].submit(self.cal.now(), Duration::from_secs(service))
    }

    /// A dirty-page write-back (fire and forget) plus its CPU overhead.
    fn write_back(&mut self, _page: PageId) {
        self.charge_server(self.sys.disk_overhead_inst);
        let _ = self.disk_io();
    }

    // ------------------------------------------------------------------
    // Sizing helpers
    // ------------------------------------------------------------------

    fn cost_inst(&self, cost: Cost) -> f64 {
        f64::from(cost.lock_ops) * self.sys.lock_inst
            + f64::from(cost.copy_ops) * self.sys.register_copy_inst
            + f64::from(cost.merged_objects) * self.sys.copy_merge_inst
    }

    fn object_bytes(&self) -> u32 {
        self.sys.object_bytes(self.gen.spec().objects_per_page)
    }

    fn request_bytes(&self, req: &Request) -> u32 {
        let payload = match req {
            Request::Commit { writes, .. } => {
                if self.protocol == Protocol::Os {
                    writes.iter().map(|w| w.slots.len() as u32).sum::<u32>() * self.object_bytes()
                } else {
                    writes.len() as u32 * self.sys.page_size
                }
            }
            _ => 0,
        };
        self.sys.control_msg_bytes + payload
    }

    fn server_msg_bytes(&self, msg: &ServerMsg) -> u32 {
        let payload = match msg {
            ServerMsg::ReadGranted { data, .. } | ServerMsg::WriteGranted { data, .. } => {
                match data {
                    DataGrant::Page { .. } => self.sys.page_size,
                    DataGrant::Object { .. } => self.object_bytes(),
                    DataGrant::None => 0,
                }
            }
            _ => 0,
        };
        self.sys.control_msg_bytes + payload
    }

    /// Pages the server must have resident before handling `req`.
    fn pages_needed(&self, req: &Request) -> Vec<PageId> {
        match req {
            Request::Read { oid, .. } => vec![oid.page],
            Request::Write {
                oid,
                need_copy: true,
                ..
            } => vec![oid.page],
            // The object server installs committed objects into their
            // pages: absent pages must be read (read-modify-write).
            Request::Commit { writes, .. } if self.protocol == Protocol::Os => {
                writes.iter().map(|w| w.page).collect()
            }
            _ => Vec::new(),
        }
    }

    fn page_payload(msg: &ServerMsg) -> Option<PageId> {
        match msg {
            ServerMsg::ReadGranted { data, .. } | ServerMsg::WriteGranted { data, .. } => {
                match data {
                    DataGrant::Page { page, .. } => Some(*page),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn next_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn finish(self, end: SimTime) -> RunMetrics {
        let measured = self.run.measured_secs();
        let blen = measured / self.run.batches as f64;
        let mut bm = BatchMeans::new();
        for &c in &self.batch_commits {
            bm.record_batch(c as f64 / blen);
        }
        let ci = bm.confidence().expect(">=2 batches");
        let span = end.as_secs().max(f64::MIN_POSITIVE);
        let measured_commits: u64 = self.batch_commits.iter().sum();
        let client_util: f64 = self
            .client_cpus
            .iter()
            .map(|c| c.busy_time().as_secs() / span)
            .sum::<f64>()
            / self.client_cpus.len() as f64;
        let disk_util: f64 = self
            .disks
            .iter()
            .map(|d| d.busy_time().as_secs() / span)
            .sum::<f64>()
            / self.disks.len() as f64;
        let (hits, misses) = (self.buffer.hits(), self.buffer.misses());
        let (mut chits, mut cmisses) = (0u64, 0u64);
        let mut callbacks_recv = 0u64;
        for cl in &self.clients {
            let s = cl.engine.stats();
            chits += s.hits;
            cmisses += s.misses;
            callbacks_recv += s.callbacks_received;
        }
        let _ = callbacks_recv;
        let sstats = self.server.stats();
        let grants = sstats.page_grants + sstats.obj_grants;
        let spec = self.gen.spec();
        RunMetrics {
            protocol: self.protocol.name().to_string(),
            workload: spec.name.to_string(),
            write_prob: spec.hot_write_prob,
            throughput: ci.mean,
            throughput_ci: ci.half_width,
            response_ms: self.response.mean(),
            remote_access_ms: self.remote_access.mean(),
            restarts_per_commit: self.aborts as f64 / measured_commits.max(1) as f64,
            commits: measured_commits,
            aborts: self.aborts,
            msgs_per_commit: self.messages as f64 / self.commits.max(1) as f64,
            server_cpu_util: self.server_cpu.busy_time().as_secs() / span,
            client_cpu_util: client_util,
            disk_util,
            net_util: self.network.busy_time().as_secs() / span,
            server_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
            client_hit_rate: chits as f64 / (chits + cmisses).max(1) as f64,
            callbacks: sstats.callbacks_sent,
            deescalations: sstats.deescalations,
            page_grant_frac: sstats.page_grants as f64 / grants.max(1) as f64,
        }
    }
}
