//! Quickstart: open an embedded page-server database, run transactions
//! from two client workstations, and watch the adaptive protocol at work.
//!
//! ```sh
//! cargo run --release -p fgs-examples --bin quickstart
//! ```

use fgs_core::{Oid, PageId, Protocol};
use fgs_oodb::{EngineConfig, Oodb};

fn main() {
    // A small database: 64 pages × 8 objects, running PS-AA — the paper's
    // adaptive page server (page locking when possible, object locking
    // under contention).
    let db = Oodb::open(EngineConfig {
        protocol: Protocol::PsAa,
        db_pages: 64,
        objects_per_page: 8,
        object_size: 64,
        page_size: 4096,
        n_clients: 2,
        client_cache_pages: 16,
        server_pool_pages: 32,
        ..EngineConfig::default()
    })
    .expect("open database");

    let alice = db.session(0);
    let bob = db.session(1);
    let part = Oid::new(PageId(7), 3);

    // Alice creates a part record. `run_txn` retries on deadlock.
    alice
        .run_txn(4, |txn| txn.write(part, &b"gear: 42 teeth, module 2"[..]))
        .expect("alice's update commits");

    // Bob reads it from his own workstation; the page ships to his cache.
    bob.begin().expect("begin");
    let bytes = bob.read(part).expect("read");
    println!("bob sees: {}", String::from_utf8_lossy(&bytes));
    bob.commit().expect("commit");

    // Bob reads again: now a pure cache hit — intertransaction caching
    // means no server interaction at all for read-only re-access.
    bob.begin().expect("begin");
    let _ = bob.read(part).expect("read");
    bob.commit().expect("commit");

    let stats = bob.stats().expect("stats");
    println!(
        "bob's cache: {} hits, {} misses ({} callbacks received)",
        stats.hits, stats.misses, stats.callbacks_received
    );

    // Alice updates the part: the server calls Bob's cached page back.
    alice
        .run_txn(4, |txn| txn.write(part, &b"gear: 45 teeth, module 2"[..]))
        .expect("alice's second update");

    bob.begin().expect("begin");
    println!(
        "bob sees after update: {}",
        String::from_utf8_lossy(&bob.read(part).expect("read"))
    );
    bob.commit().expect("commit");

    let server = db.server_stats();
    println!(
        "server: {} pages shipped, {} callbacks, {} page-level grants, \
         {} object-level grants",
        server.pages_shipped, server.callbacks_sent, server.page_grants, server.obj_grants
    );
    db.shutdown();
}
