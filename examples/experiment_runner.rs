//! Drive the paper's simulator directly: build a custom workload, sweep a
//! parameter, and print a figure-style table — the same machinery behind
//! `cargo bench -p fgs-bench --bench figures`, exposed as a library.
//!
//! ```sh
//! cargo run --release -p fgs-examples --bin experiment_runner [workload]
//! ```
//! where `workload` is one of `hotcold`, `uniform`, `hicon`, `private`,
//! `interleaved` (default `hotcold`).

use fgs_core::Protocol;
use fgs_sim::{run_point, RunConfig, SystemConfig};
use fgs_workload::{Locality, WorkloadSpec};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "hotcold".into());
    let make: Box<dyn Fn(f64) -> WorkloadSpec> = match which.as_str() {
        "hotcold" => Box::new(|w| WorkloadSpec::hotcold(Locality::Low, w)),
        "uniform" => Box::new(|w| WorkloadSpec::uniform(Locality::Low, w)),
        "hicon" => Box::new(|w| WorkloadSpec::hicon(Locality::Low, w)),
        "private" => Box::new(|w| WorkloadSpec::private(Locality::High, w)),
        "interleaved" => Box::new(WorkloadSpec::interleaved_private),
        other => {
            eprintln!("unknown workload: {other}");
            std::process::exit(1);
        }
    };
    // Short runs: this example favours speed over tight confidence
    // intervals (use the bench harness for the real figures).
    let sys = SystemConfig::default();
    let run = RunConfig {
        duration: 60.0,
        warmup: 10.0,
        batches: 5,
        ..RunConfig::default()
    };
    println!("workload {which}: throughput (txns/sec) vs per-object write probability\n");
    print!("{:<8}", "w");
    for p in Protocol::ALL {
        print!("{:>9}", p.name());
    }
    println!();
    for w in [0.0, 0.05, 0.1, 0.2] {
        print!("{w:<8.2}");
        for p in Protocol::ALL {
            let m = run_point(p, make(w), &sys, &run);
            print!("{:>9.2}", m.throughput);
        }
        println!();
    }
    println!("\nDetailed per-run metrics (PS-AA at w=0.1):");
    let m = run_point(Protocol::PsAa, make(0.1), &sys, &run);
    println!("{}", m.summary());
    println!(
        "  page-level grants: {:.0}%  de-escalations: {}  client hit rate: {:.0}%",
        m.page_grant_frac * 100.0,
        m.deescalations,
        m.client_hit_rate * 100.0
    );
}
