//! Crash recovery end to end: run transactions against a file-backed
//! database, "crash" (keeping only the durable log and whatever pages
//! happened to be stolen to disk), recover, and verify that exactly the
//! committed state survived.
//!
//! ```sh
//! cargo run --release -p fgs-examples --bin crash_recovery
//! ```

use fgs_core::{Oid, PageId, Protocol};
use fgs_oodb::{EngineConfig, Oodb};
use fgs_pagestore::MemDisk;
use std::sync::Arc;

fn main() {
    let config = EngineConfig {
        protocol: Protocol::PsAa,
        db_pages: 32,
        objects_per_page: 8,
        object_size: 64,
        page_size: 4096,
        n_clients: 2,
        client_cache_pages: 16,
        server_pool_pages: 8, // small pool: forces steals of dirty pages
        ..EngineConfig::default()
    };
    let disk = Arc::new(MemDisk::new(config.page_size));
    let db = Oodb::open_with_disk(config.clone(), disk.clone(), true).expect("open");

    let alice = db.session(0);
    println!("committing 20 account updates...");
    for i in 0..20u64 {
        alice
            .run_txn(4, |txn| {
                txn.write(
                    Oid::new(PageId((i % 8) as u32), (i % 8) as u16),
                    format!("balance rev {i}").into_bytes(),
                )
            })
            .expect("commit");
    }

    // One update that never commits — it must NOT survive the crash.
    alice.begin().expect("begin");
    alice
        .write(Oid::new(PageId(0), 0), b"UNCOMMITTED".to_vec())
        .expect("write");
    println!("leaving one transaction uncommitted, then crashing...");

    // Crash: all that survives is the disk image (with whatever the buffer
    // pool stole) and the *durable* prefix of the log.
    let log = db.durable_log();
    drop(db); // the server thread dies; no clean shutdown needed

    println!("recovering from {} bytes of durable log...", log.len());
    let (db2, report) = Oodb::recover(config, disk, log).expect("recover");
    println!(
        "recovery: {} winners redone ({} updates), {} losers undone ({} updates)",
        report.winners.len(),
        report.redone,
        report.losers.len(),
        report.undone
    );

    let bob = db2.session(1);
    bob.begin().expect("begin");
    let v = bob.read(Oid::new(PageId(3), 3)).expect("read");
    println!(
        "after recovery, account (P3:3) = {:?}",
        String::from_utf8_lossy(&v)
    );
    assert_eq!(v, b"balance rev 19", "last committed revision survived");
    let v0 = bob.read(Oid::new(PageId(0), 0)).expect("read");
    assert_ne!(v0, b"UNCOMMITTED", "uncommitted update rolled back");
    println!(
        "account (P0:0) = {:?} (the uncommitted write is gone)",
        String::from_utf8_lossy(&v0)
    );
    bob.commit().expect("commit");
    db2.shutdown();
    println!("ok: committed state survived, uncommitted state did not");
}
