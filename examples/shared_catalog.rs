//! A contended shared-catalog workload (the paper's HOTCOLD flavour):
//! several clients update entries of a shared catalog whose records are
//! co-located on pages, then the example compares all five protocols on
//! the same job. Fine-grained schemes avoid the false sharing that makes
//! the pure page server serialize disjoint updates.
//!
//! ```sh
//! cargo run --release -p fgs-examples --bin shared_catalog
//! ```

use fgs_core::{Oid, PageId, Protocol};
use fgs_oodb::{EngineConfig, Oodb, TxnError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CLIENTS: u16 = 4;
const CATALOG_PAGES: u32 = 4;
const OBJECTS_PER_PAGE: u16 = 16;
const UPDATES_PER_CLIENT: usize = 50;

fn run(protocol: Protocol) -> (f64, u64, u64, u64) {
    let db = Arc::new(
        Oodb::open(EngineConfig {
            protocol,
            db_pages: CATALOG_PAGES + 16,
            objects_per_page: OBJECTS_PER_PAGE,
            object_size: 48,
            page_size: 4096,
            n_clients: CLIENTS,
            client_cache_pages: 16,
            server_pool_pages: 16,
            ..EngineConfig::default()
        })
        .expect("open database"),
    );
    let retries = Arc::new(AtomicU64::new(0));
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let db = db.clone();
            let retries = retries.clone();
            scope.spawn(move || {
                let session = db.session(c);
                for i in 0..UPDATES_PER_CLIENT {
                    // Each client owns a distinct set of slots, but slots
                    // of *different* clients share pages: pure page-level
                    // locking sees conflicts that object locking avoids.
                    let slot = (c + (i as u16 % 4) * CLIENTS) % OBJECTS_PER_PAGE;
                    let page = (i as u32) % CATALOG_PAGES;
                    let target = Oid::new(PageId(page), slot);
                    loop {
                        let res = session.run_txn(0, |txn| {
                            let price = txn.read(target)?;
                            let mut bytes = price.clone();
                            bytes[0] = bytes[0].wrapping_add(1);
                            txn.write(target, bytes)
                        });
                        match res {
                            Ok(()) => break,
                            Err(TxnError::Deadlock) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = db.server_stats();
    let tps = (CLIENTS as usize * UPDATES_PER_CLIENT) as f64 / elapsed;
    (tps, stats.callbacks_sent, stats.deadlocks, stats.obj_grants)
}

fn main() {
    println!(
        "{CLIENTS} clients × {UPDATES_PER_CLIENT} catalog updates; disjoint objects, shared pages\n"
    );
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>14}",
        "proto", "txns/sec", "callbacks", "deadlocks", "object-grants"
    );
    for protocol in Protocol::ALL {
        let (tps, callbacks, deadlocks, obj_grants) = run(protocol);
        println!(
            "{:<8}{:>12.0}{:>12}{:>12}{:>14}",
            protocol.name(),
            tps,
            callbacks,
            deadlocks,
            obj_grants
        );
    }
    println!(
        "\nExpect: PS pays for false sharing (deadlocks/serialization); \
         hybrids grant object locks; PS-AA adapts between the two."
    );
}
