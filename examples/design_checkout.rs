//! A CAD-style workload (the paper's PRIVATE pattern): each designer
//! repeatedly revises drawings in a private region of the database while
//! consulting a shared, read-only parts catalog. There is no data
//! contention at all — the interesting question is how few messages the
//! protocol needs once caches are warm.
//!
//! ```sh
//! cargo run --release -p fgs-examples --bin design_checkout [protocol]
//! ```

use fgs_core::{Oid, PageId, Protocol};
use fgs_oodb::{EngineConfig, Oodb};
use std::sync::Arc;

const DESIGNERS: u16 = 4;
const PAGES_PER_DESIGNER: u32 = 8;
const CATALOG_PAGES: u32 = 16;
const OBJECTS_PER_PAGE: u16 = 8;
const REVISIONS: usize = 40;

fn main() {
    let protocol = std::env::args()
        .nth(1)
        .map(|s| s.parse::<Protocol>().expect("protocol name"))
        .unwrap_or(Protocol::PsAa);
    let private_pages = u32::from(DESIGNERS) * PAGES_PER_DESIGNER;
    let db = Arc::new(
        Oodb::open(EngineConfig {
            protocol,
            db_pages: private_pages + CATALOG_PAGES,
            objects_per_page: OBJECTS_PER_PAGE,
            object_size: 96,
            page_size: 4096,
            n_clients: DESIGNERS,
            client_cache_pages: (PAGES_PER_DESIGNER + CATALOG_PAGES) as usize,
            server_pool_pages: 32,
            ..EngineConfig::default()
        })
        .expect("open database"),
    );

    println!("protocol: {protocol}, {DESIGNERS} designers, {REVISIONS} revisions each");
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for d in 0..DESIGNERS {
            let db = db.clone();
            scope.spawn(move || {
                let session = db.session(d);
                let my_base = u32::from(d) * PAGES_PER_DESIGNER;
                for rev in 0..REVISIONS {
                    session
                        .run_txn(8, |txn| {
                            // Consult a couple of catalog entries…
                            let part = Oid::new(
                                PageId(private_pages + (rev as u32 % CATALOG_PAGES)),
                                (rev % OBJECTS_PER_PAGE as usize) as u16,
                            );
                            let _ = txn.read(part)?;
                            // …then revise two drawing objects in the
                            // private region.
                            for k in 0..2u32 {
                                let target = Oid::new(
                                    PageId(my_base + (rev as u32 + k) % PAGES_PER_DESIGNER),
                                    ((rev as u32 + k) % u32::from(OBJECTS_PER_PAGE)) as u16,
                                );
                                txn.write(
                                    target,
                                    format!("designer {d} revision {rev}").into_bytes(),
                                )?;
                            }
                            Ok(())
                        })
                        .expect("design transaction commits");
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let mut hits = 0;
    let mut misses = 0;
    for d in 0..DESIGNERS {
        let s = db.session(d).stats().expect("stats");
        hits += s.hits;
        misses += s.misses;
    }
    let server = db.server_stats();
    let txns = DESIGNERS as usize * REVISIONS;
    println!(
        "{txns} transactions in {elapsed:.2?} ({:.0} txns/sec)",
        txns as f64 / elapsed.as_secs_f64()
    );
    println!(
        "client caches: {:.1}% hit rate after warmup ({hits} hits / {misses} misses)",
        100.0 * hits as f64 / (hits + misses) as f64
    );
    println!(
        "server: {} pages shipped, {} callbacks ({}), {} deadlocks",
        server.pages_shipped,
        server.callbacks_sent,
        if server.callbacks_sent == 0 {
            "no sharing, as PRIVATE predicts"
        } else {
            "read-only catalog sharing only"
        },
        server.deadlocks,
    );
    match Arc::try_unwrap(db) {
        Ok(db) => db.shutdown(),
        Err(_) => unreachable!("all designers joined"),
    }
}
